"""``dimmunix-serve`` — run the fleet immunity service.

Fronts a local history backend with the fleet protocol so many
processes (machines, containers, phones) share one antibody pool::

    dimmunix-serve shard:///var/dimmunix/pool --port 7741
    dimmunix-serve sqlite:///var/dimmunix/history.db
    dimmunix-serve mem://            # ephemeral pool (testing, demos)

Clients point their history DSN at it (``history_url="tcp://host:7741"``
or ``immunity(history_url=...)``) and get push-on-flush, pull-on-sync
herd immunity: a deadlock earned by one process avoids in all of them.
``--port 0`` binds an ephemeral port and prints it — the test-harness
mode.

The server is single-store, in-process, and deliberately boring: all
concurrency control lives in the store's own lock, all protocol framing
in :mod:`repro.fleet.protocol`. Stop with Ctrl-C; the backend is
flushed and closed on the way out.
"""

from __future__ import annotations

import argparse
import sys
import threading
from typing import Optional, Sequence

from repro.core.store import open_store, parse_history_url
from repro.core.store.url import (
    DEFAULT_FLEET_PORT,
    SCHEME_TCP,
    HistoryUrlError,
)
from repro.errors import DimmunixError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dimmunix-serve",
        description=(
            "Serve a Dimmunix history backend to tcp:// clients. BACKEND "
            "is any local history DSN: sqlite:///path, shard:///dir, "
            "jsonl:///path, or mem:// (ephemeral)."
        ),
    )
    parser.add_argument("backend", help="history DSN to serve")
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_FLEET_PORT,
        help=f"bind port (default: {DEFAULT_FLEET_PORT}; 0 = ephemeral)",
    )
    parser.add_argument(
        "--max-signatures",
        type=int,
        default=1_000_000,
        help="capacity of the served pool (default: 1000000)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        url = parse_history_url(args.backend)
    except HistoryUrlError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if url.scheme == SCHEME_TCP:
        print(
            "error: dimmunix-serve fronts a *local* backend; serving "
            "tcp:// would only proxy another server. Point it at the "
            "store that server should own (sqlite://, shard://, ...)",
            file=sys.stderr,
        )
        return 2
    from repro.fleet.server import FleetServer

    try:
        store = open_store(args.backend, max_signatures=args.max_signatures)
    except DimmunixError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    server = FleetServer(store, host=args.host, port=args.port)
    server.start_background()
    # One parseable line once the socket is live — harnesses wait on it.
    print(
        f"dimmunix-serve: listening on {server.address}, serving "
        f"{store.url} ({len(store)} signature(s))",
        flush=True,
    )
    try:
        threading.Event().wait()  # serve until interrupted
    except KeyboardInterrupt:
        print("dimmunix-serve: shutting down", file=sys.stderr)
    finally:
        server.stop()
        store.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
