"""``dimmunix-lint`` — static lock-order analysis over Python source.

The command-line face of :mod:`repro.predict.staticlint`::

    dimmunix-lint examples/                      # report cycles
    dimmunix-lint --format json src/             # machine-readable
    dimmunix-lint --seed sqlite:///immunity.db src/
                                                 # seed predicted antibodies

Walks the given files/directories (never imports them), builds one
lock-order graph across all of them, and reports every cycle as a
``file:line`` diagnostic with the cycle path and a confidence estimate.
With ``--seed`` each finding is also compiled into a *predicted*
:class:`~repro.core.signature.DeadlockSignature` and written into the
named history (plain path or ``jsonl://`` / ``sqlite://`` DSN) so the
very next run of the program avoids the predicted interleaving.

Exit status: ``1`` when cycles were found (lint semantics — wire it
into CI), ``0`` on a clean pass, ``2`` on usage or file errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core.store.url import HistoryUrlError
from repro.predict.harness import seed_history_spec
from repro.predict.lockgraph import DEFAULT_MAX_CYCLE
from repro.predict.staticlint import LintDiagnostic, lint_paths


def _diagnostic_json(diagnostic: LintDiagnostic) -> dict:
    data = {
        "file": diagnostic.file,
        "line": diagnostic.line,
        "cycle": diagnostic.cycle,
        "confidence": diagnostic.confidence,
        "positions": [list(position) for position in diagnostic.positions],
    }
    if diagnostic.signature is not None:
        data["signature"] = diagnostic.signature.to_json()
    return data


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dimmunix-lint",
        description=(
            "Static lock-order cycle detection over Python source. "
            "Reports potential deadlocks as file:line diagnostics; "
            "--seed turns them into predicted antibodies in a Dimmunix "
            "history."
        ),
    )
    parser.add_argument(
        "paths", nargs="+", metavar="path", help="files or directories"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="diagnostic output format (default: text)",
    )
    parser.add_argument(
        "--min-confidence",
        type=float,
        default=0.0,
        metavar="C",
        help="suppress cycles below this confidence (default: 0.0)",
    )
    parser.add_argument(
        "--max-cycle",
        type=int,
        default=DEFAULT_MAX_CYCLE,
        metavar="N",
        help=f"longest cycle to search for (default: {DEFAULT_MAX_CYCLE})",
    )
    parser.add_argument(
        "--seed",
        metavar="HISTORY",
        help=(
            "seed findings as predicted signatures into this history "
            "(plain path, jsonl:// or sqlite:// DSN)"
        ),
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line (diagnostics still print)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not 0.0 <= args.min_confidence <= 1.0:
        parser.error("--min-confidence must be in [0, 1]")
    if args.max_cycle < 2:
        parser.error("--max-cycle must be at least 2")

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        for path in missing:
            print(f"error: no such path: {path}", file=sys.stderr)
        return 2

    diagnostics, errors = lint_paths(
        args.paths,
        min_confidence=args.min_confidence,
        max_cycle=args.max_cycle,
    )
    for error in errors:
        print(f"warning: {error}", file=sys.stderr)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "diagnostics": [
                        _diagnostic_json(d) for d in diagnostics
                    ],
                    "errors": errors,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for diagnostic in diagnostics:
            print(diagnostic.render())

    if args.seed and diagnostics:
        try:
            seeded = seed_history_spec(args.seed, diagnostics)
        except HistoryUrlError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if not args.quiet:
            print(
                f"seeded {seeded} predicted signature(s) into {args.seed} "
                f"({len(diagnostics) - seeded} already present)"
            )

    if not args.quiet and args.format == "text":
        noun = "cycle" if len(diagnostics) == 1 else "cycles"
        print(f"{len(diagnostics)} lock-order {noun} found")
    return 1 if diagnostics else 0


if __name__ == "__main__":
    sys.exit(main())
