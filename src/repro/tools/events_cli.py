"""``dimmunix-events`` — tail, summarize, and replay Dimmunix event streams.

The counterpart of ``dimmunix-history`` for the *live* side of the
system: where the history CLI operates on the persistent antibodies, this
one operates on the typed event stream (JSONL files produced by
:class:`repro.core.events.JsonlWriter`, e.g. via
``Dimmunix.record(path)``). Subcommands::

    tail <file>      print events, newest last (``--follow`` to keep
                     watching the file, like ``tail -f``)
    summary <file>   counts by kind and by source, seq integrity check
    replay <file>    re-publish the events through an in-process
                     EventBus (typed reconstruction), reporting what a
                     subscriber would have observed
    mine <file>      predict deadlocks from the recorded lock-order
                     reversals (:mod:`repro.predict.tracemine`);
                     ``--seed`` writes them into a history as
                     predicted antibodies
    trace <file>     compile the acquire lifecycle into Chrome
                     trace-event JSON (Perfetto / chrome://tracing
                     loadable); ``-o`` writes to a file

``replay`` is the integrity check for the whole pipeline: every line is
rebuilt into its frozen event class (signatures included) and pushed
through a real bus, so a file that replays cleanly is guaranteed to be
consumable by any stream subscriber — profilers, aggregators, or a
future remote collector.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Iterator, Optional, Sequence

from repro.core.events import (
    EVENT_TYPES,
    Event,
    EventBus,
    EventCounter,
    event_from_dict,
)


def _iter_lines(
    path: Path, errors: Optional[list[tuple[int, str]]] = None
) -> Iterator[tuple[int, dict]]:
    """Yield ``(lineno, decoded)`` per JSONL line.

    Undecodable lines (e.g. a line torn by a crash mid-write — likely,
    since Dimmunix does its most interesting writing *during* a
    deadlock) are collected into ``errors`` when given, otherwise
    warned to stderr; either way iteration continues.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield lineno, json.loads(line)
            except json.JSONDecodeError as error:
                if errors is not None:
                    errors.append((lineno, str(error)))
                else:
                    print(
                        f"warning: {path}:{lineno}: skipping non-JSON line "
                        f"({error})",
                        file=sys.stderr,
                    )


def _format_age(age_ns) -> str:
    """Render a nanosecond wait age human-first (``482.5ms``)."""
    if not isinstance(age_ns, (int, float)) or age_ns < 0:
        return "?"
    return f"{age_ns / 1e6:.1f}ms"


def _format_event(data: dict) -> str:
    kind = data.get("kind", "?")
    seq = data.get("seq", -1)
    source = data.get("source", "?")
    ts = data.get("ts", 0.0)
    detail = ""
    if kind in ("request", "acquired", "release"):
        detail = f"{data.get('thread', '?')} -> {data.get('lock', '?')}"
        if kind == "release" and data.get("notified"):
            detail += f" (notified {data['notified']} signature(s))"
    elif kind == "yield":
        detail = f"{data.get('thread', '?')} parked for {data.get('lock', '?')}"
    elif kind == "resume":
        detail = f"{data.get('thread', '?')} retrying"
    elif kind in ("detection", "starvation"):
        signature = data.get("signature") or {}
        size = len(signature.get("entries", ())) or "?"
        status = "new" if data.get("recorded", True) else "duplicate"
        detail = f"{data.get('thread', '?')} size={size} [{status}]"
        if kind == "starvation":
            detail += f" trigger={data.get('trigger', '?')}"
    elif kind == "match-capped":
        signature = data.get("signature") or {}
        size = len(signature.get("entries", ())) or "?"
        verdict = "instantiable" if data.get("instantiable") else "clear"
        detail = (
            f"{data.get('thread', '?')} size={size} capped at "
            f"{data.get('steps', '?')} steps "
            f"[{data.get('policy', '?')} -> {verdict}]"
        )
    elif kind == "history-saved":
        detail = f"{data.get('signatures', '?')} signature(s) -> {data.get('path', '?')}"
    elif kind == "predicted-seeded":
        signature = data.get("signature") or {}
        size = len(signature.get("entries", ())) or "?"
        detail = (
            f"size={size} via {data.get('origin', '?')} "
            f"(confidence {data.get('confidence', 0.0):.2f})"
        )
    elif kind == "livelock-suspected":
        detail = (
            f"{data.get('thread', '?')} {data.get('reason', '?')} "
            f"age={_format_age(data.get('age_ns'))} "
            f"scan={data.get('scan', '?')}"
        )
        suspects = (data.get("report") or {}).get("suspects") or ()
        if suspects:
            detail += f" ({len(suspects)} suspect(s) in report)"
    elif kind == "watchdog-mitigation":
        detail = (
            f"{data.get('thread', '?')} "
            f"[{data.get('policy', '?')} -> {data.get('action', '?')}] "
            f"{data.get('reason', '?')} age={_format_age(data.get('age_ns'))}"
        )
    elif kind == "fleet-sync":
        parts = [
            f"pulled {data.get('pulled', 0)}",
            f"pushed {data.get('pushed', 0)}",
        ]
        if data.get("spill_replayed"):
            parts.append(f"spill-replayed {data['spill_replayed']}")
        if data.get("failures"):
            parts.append(f"failures {data['failures']}")
        detail = (
            ", ".join(parts) + f" [trigger={data.get('trigger', '?')}]"
        )
    return f"[{seq:>6}] {ts:>12.2f} {source:<24} {kind:<13} {detail}"


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------

def cmd_tail(args: argparse.Namespace) -> int:
    path = Path(args.file)
    if not path.exists():
        print(f"error: {path} does not exist", file=sys.stderr)
        return 2
    wanted: Optional[set] = set(args.kind) if args.kind else None
    if wanted is not None:
        unknown = wanted - set(EVENT_TYPES)
        if unknown:
            print(
                f"error: unknown kind(s) {sorted(unknown)}; "
                f"valid: {sorted(EVENT_TYPES)}",
                file=sys.stderr,
            )
            return 2

    def matches(data: dict) -> bool:
        if wanted is not None and data.get("kind") not in wanted:
            return False
        if args.source is not None and data.get("source") != args.source:
            return False
        return True

    # Read the backlog, remembering where the last complete line ended
    # so follow mode resumes exactly there — nothing appended between
    # the backlog scan and the follow loop is lost.
    rows = []
    resume_offset = 0
    with open(path, "r", encoding="utf-8") as handle:
        while True:
            line = handle.readline()
            if not line:
                break
            if args.follow and not line.endswith("\n"):
                break  # torn tail: let the follow loop re-read it whole
            resume_offset = handle.tell()
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as error:
                print(
                    f"warning: {path}: skipping non-JSON line ({error})",
                    file=sys.stderr,
                )
                continue
            if matches(data):
                rows.append(data)
    if args.limit is not None and args.limit >= 0:
        rows = rows[len(rows) - args.limit :] if args.limit else []
    for data in rows:
        print(_format_event(data))
    if not args.follow:
        return 0
    # tail -f: poll the file for appended lines until interrupted. A
    # line is parsed only once its newline has landed — the writer may
    # be mid-write — and a line that still fails to decode (torn by a
    # crash) is skipped with a warning, like the backlog path.
    try:
        with open(path, "r", encoding="utf-8") as handle:
            handle.seek(resume_offset)
            pending = ""
            while True:
                chunk = handle.readline()
                if not chunk:
                    time.sleep(args.poll_interval)
                    continue
                pending += chunk
                if not pending.endswith("\n"):
                    continue  # incomplete write; wait for the rest
                line, pending = pending.strip(), ""
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError as error:
                    print(
                        f"warning: skipping non-JSON line ({error})",
                        file=sys.stderr,
                    )
                    continue
                if matches(data):
                    print(_format_event(data), flush=True)
    except KeyboardInterrupt:
        return 0


def _nearest_rank(sorted_ns: list[int], q: float) -> int:
    """Nearest-rank percentile of an ascending sample list."""
    index = min(len(sorted_ns) - 1, max(0, int(q * len(sorted_ns))))
    return sorted_ns[index]


def cmd_summary(args: argparse.Namespace) -> int:
    from repro.core.signature import DeadlockSignature, provenance_rank

    path = Path(args.file)
    by_kind: dict[str, int] = {}
    by_source: dict[str, int] = {}
    seqs: list[tuple[int, str]] = []
    # Distinct signatures seen anywhere in the stream, each at the
    # highest provenance it reached (a prediction that later shows up
    # promoted counts as promoted).
    provenance_by_signature: dict[tuple, str] = {}
    # Inter-event latencies from the monotonic ts_ns stamps, matched
    # per (source, thread). Events without a stamp (a recording that
    # predates ts_ns, or a simulated clock) simply contribute nothing.
    pending_request: dict[tuple[str, str], int] = {}
    pending_park: dict[tuple[str, str], int] = {}
    acquire_ns: list[int] = []
    park_ns: list[int] = []
    # Watchdog escalations: per-node suspicion tallies (reasons, worst
    # reported wait age) and mitigation outcomes.
    suspects: dict[str, dict] = {}
    mitigations: dict[str, int] = {}
    total = 0
    for _lineno, data in _iter_lines(path):
        total += 1
        by_kind[data.get("kind", "?")] = by_kind.get(data.get("kind", "?"), 0) + 1
        source = data.get("source", "?")
        by_source[source] = by_source.get(source, 0) + 1
        if isinstance(data.get("seq"), int):
            seqs.append((data["seq"], source))
        ts_ns = data.get("ts_ns")
        if isinstance(ts_ns, int) and ts_ns > 0:
            thread_key = (source, str(data.get("thread", "")))
            kind = data.get("kind")
            if kind == "request":
                pending_request[thread_key] = ts_ns
            elif kind == "acquired":
                started = pending_request.pop(thread_key, None)
                if started is not None and ts_ns >= started:
                    acquire_ns.append(ts_ns - started)
            elif kind == "yield":
                pending_park[thread_key] = ts_ns
            elif kind == "resume":
                started = pending_park.pop(thread_key, None)
                if started is not None and ts_ns >= started:
                    park_ns.append(ts_ns - started)
        kind = data.get("kind")
        if kind == "livelock-suspected":
            entry = suspects.setdefault(
                str(data.get("thread", "?")),
                {"count": 0, "reasons": set(), "max_age_ns": 0},
            )
            entry["count"] += 1
            entry["reasons"].add(str(data.get("reason", "?")))
            age_ns = data.get("age_ns")
            if isinstance(age_ns, (int, float)):
                entry["max_age_ns"] = max(entry["max_age_ns"], int(age_ns))
        elif kind == "watchdog-mitigation":
            action = str(data.get("action", "?"))
            mitigations[action] = mitigations.get(action, 0) + 1
        signature_data = data.get("signature")
        if isinstance(signature_data, dict):
            try:
                signature = DeadlockSignature.from_json(signature_data)
            except (KeyError, TypeError, ValueError):
                continue  # torn or foreign payload; counted above anyway
            key = signature.canonical_key()
            known = provenance_by_signature.get(key)
            if known is None or provenance_rank(
                signature.provenance
            ) > provenance_rank(known):
                provenance_by_signature[key] = signature.provenance
    print(f"{path}: {total} event(s)")
    print("  by kind:")
    for kind, count in sorted(by_kind.items(), key=lambda kv: -kv[1]):
        print(f"    {count:>8}  {kind}")
    print("  by source:")
    for source, count in sorted(by_source.items(), key=lambda kv: -kv[1]):
        print(f"    {count:>8}  {source}")
    if provenance_by_signature:
        tallies = {"earned": 0, "promoted": 0, "predicted": 0}
        for provenance in provenance_by_signature.values():
            tallies[provenance] = tallies.get(provenance, 0) + 1
        print(
            f"  signatures: {len(provenance_by_signature)} distinct "
            f"({tallies['earned']} earned, {tallies['promoted']} promoted, "
            f"{tallies['predicted']} predicted)"
        )
    if suspects or mitigations:
        suspicions = sum(entry["count"] for entry in suspects.values())
        mitigated = sum(mitigations.values())
        print(
            f"  stalls: {suspicions} suspicion(s) across "
            f"{len(suspects)} node(s), {mitigated} mitigation(s)"
        )
        for name, entry in sorted(
            suspects.items(), key=lambda kv: -kv[1]["max_age_ns"]
        ):
            reasons = ",".join(sorted(entry["reasons"]))
            print(
                f"    {name}: {entry['count']}x {reasons} "
                f"oldest {_format_age(entry['max_age_ns'])}"
            )
        for action, count in sorted(mitigations.items()):
            print(f"    mitigated [{action}]: {count}")
    for label, samples in (
        ("request->acquired", acquire_ns),
        ("yield->resume", park_ns),
    ):
        if samples:
            samples.sort()
            print(
                f"  latency {label}: n={len(samples)}"
                f" p50={_nearest_rank(samples, 0.50)}ns"
                f" p90={_nearest_rank(samples, 0.90)}ns"
                f" p99={_nearest_rank(samples, 0.99)}ns"
            )
    if seqs:
        # One file may hold several recording runs appended back to
        # back (JsonlWriter appends; each run's bus numbers its own
        # stream, starting wherever the recorder attached). Any seq
        # drop is therefore a segment boundary; the disorder a bus can
        # never produce is an adjacent repeat of the same (seq, source)
        # — a duplicated line — since one bus never reuses a seq and a
        # new run's coinciding seq is legal across the boundary.
        segments = 1
        ordered = True
        for (prev_seq, prev_src), (cur_seq, cur_src) in zip(seqs, seqs[1:]):
            if cur_seq == prev_seq and cur_src == prev_src:
                ordered = False
            elif cur_seq <= prev_seq:
                segments += 1
        status = "strictly increasing" if ordered else "OUT OF ORDER"
        if segments > 1:
            status += f" within {segments} recording segment(s)"
        print(f"  seq: {seqs[0][0]}..{seqs[-1][0]} ({status})")
        if not ordered:
            return 1
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    path = Path(args.file)
    bus = EventBus()
    counter = EventCounter()
    bus.subscribe(counter)
    detections: list[Event] = []
    bus.subscribe(detections.append, kinds=("detection", "starvation"))
    replayed = 0
    errors = 0
    json_errors: list[tuple[int, str]] = []

    def first_json_error() -> int:
        bad_lineno, message = json_errors[0]
        print(
            f"error: {path}:{bad_lineno}: not JSON ({message})",
            file=sys.stderr,
        )
        return 1

    for lineno, data in _iter_lines(path, errors=json_errors):
        if args.strict and json_errors:
            return first_json_error()  # stop at the torn line, not EOF
        try:
            event = event_from_dict(data)
        except (ValueError, KeyError, TypeError) as error:
            errors += 1
            if args.strict:
                print(f"error: {path}:{lineno}: {error}", file=sys.stderr)
                return 1
            continue
        bus.publish(event)
        replayed += 1
    if args.strict and json_errors:
        return first_json_error()
    errors += len(json_errors)
    print(f"replayed {replayed} event(s) ({errors} undecodable)")
    for kind, count in sorted(counter.counts.items(), key=lambda kv: -kv[1]):
        print(f"  {count:>8}  {kind}")
    for source, counts in sorted(counter.by_source.items()):
        summarized = ", ".join(
            f"{kind}={count}" for kind, count in sorted(counts.items())
        )
        print(f"  {source}: {summarized}")
    if detections and args.show_signatures:
        print("signatures observed:")
        for event in detections:
            print(f"  {event.kind}: {event.signature!r}")
    return 0  # strict failures all returned above


def cmd_mine(args: argparse.Namespace) -> int:
    from repro.core.store.url import HistoryUrlError
    from repro.predict.harness import seed_history_spec
    from repro.predict.tracemine import mine_trace_file

    path = Path(args.file)
    if not path.exists():
        print(f"error: {path} does not exist", file=sys.stderr)
        return 2
    predictions = mine_trace_file(
        path, min_confidence=args.min_confidence
    )
    for prediction in predictions:
        print(prediction.render())
    if args.seed and predictions:
        try:
            seeded = seed_history_spec(args.seed, predictions)
        except HistoryUrlError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(
            f"seeded {seeded} predicted signature(s) into {args.seed} "
            f"({len(predictions) - seeded} already present)"
        )
    noun = "deadlock" if len(predictions) == 1 else "deadlocks"
    print(f"{len(predictions)} predicted {noun}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry.trace import compile_trace

    path = Path(args.file)
    if not path.exists():
        print(f"error: {path} does not exist", file=sys.stderr)
        return 2
    trace = compile_trace(data for _lineno, data in _iter_lines(path))
    text = json.dumps(trace, sort_keys=True, indent=2)
    stats = trace["dimmunix"]
    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
        print(
            f"{args.output}: {stats['spans']} span(s), "
            f"{stats['instants']} instant(s) from {stats['events']} "
            f"event(s) ({stats['dropped_unclosed']} unclosed dropped)"
        )
    else:
        print(text)
    return 0


# ----------------------------------------------------------------------
# argument parsing
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dimmunix-events",
        description="Tail, summarize, and replay Dimmunix event streams (JSONL).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    tail = commands.add_parser("tail", help="print events, newest last")
    tail.add_argument("file")
    tail.add_argument(
        "--follow",
        "-f",
        action="store_true",
        help="keep watching the file for appended events",
    )
    tail.add_argument(
        "--kind",
        action="append",
        metavar="KIND",
        help=f"only these kinds (repeatable): {', '.join(sorted(EVENT_TYPES))}",
    )
    tail.add_argument("--source", help="only events from this adapter")
    tail.add_argument(
        "--limit",
        "-n",
        type=int,
        default=None,
        help="print only the last N matching events",
    )
    tail.add_argument(
        "--poll-interval", type=float, default=0.2, help=argparse.SUPPRESS
    )
    tail.set_defaults(func=cmd_tail)

    summary = commands.add_parser(
        "summary", help="counts by kind/source, seq integrity"
    )
    summary.add_argument("file")
    summary.set_defaults(func=cmd_summary)

    replay = commands.add_parser(
        "replay", help="re-publish through an in-process bus"
    )
    replay.add_argument("file")
    replay.add_argument(
        "--strict",
        action="store_true",
        help="fail on the first undecodable line",
    )
    replay.add_argument(
        "--show-signatures",
        action="store_true",
        help="print each detection/starvation signature",
    )
    replay.set_defaults(func=cmd_replay)

    mine = commands.add_parser(
        "mine",
        help="predict deadlocks from the recorded lock-order reversals",
    )
    mine.add_argument("file")
    mine.add_argument(
        "--min-confidence",
        type=float,
        default=0.0,
        metavar="C",
        help="suppress predictions below this confidence (default: 0.0)",
    )
    mine.add_argument(
        "--seed",
        metavar="HISTORY",
        help=(
            "seed predictions into this history (plain path, jsonl:// "
            "or sqlite:// DSN)"
        ),
    )
    mine.set_defaults(func=cmd_mine)

    trace = commands.add_parser(
        "trace",
        help="compile the acquire lifecycle into Chrome trace-event JSON",
    )
    trace.add_argument("file")
    trace.add_argument(
        "--output",
        "-o",
        metavar="OUT",
        help="write the trace JSON here instead of stdout",
    )
    trace.set_defaults(func=cmd_trace)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Piped into head/less and the reader went away: exit quietly.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except OSError as error:
        # Unreadable/missing file reached a lazy open (summary, replay).
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
