"""``dimmunix-report`` — render benchmark records as a readable report.

The benchmark harness appends one JSON object per paper-vs-measured
comparison to ``benchmarks/results/records.jsonl``; this tool turns that
file into the summary block (the same rendering the terminal shows) or a
markdown table ready to paste into EXPERIMENTS.md.

The ``metrics`` verb (``dimmunix-report metrics SRC``) instead renders
telemetry as Prometheus text exposition. ``SRC`` is one of:

* a ``tcp://host:port`` fleet DSN — queries the fleet server's
  ``metrics`` op live and renders the fleet-wide aggregate;
* a telemetry-report JSON file (``Dimmunix.telemetry_report()`` dumped
  to disk) — rendered directly;
* an events JSONL recording — per-phase histograms are derived from the
  monotonic ``ts_ns`` stamps (request→acquired as ``acquire``,
  yield→resume as ``yield_park``) plus per-kind event counters.

The ``health`` verb (``dimmunix-report health SRC``) renders the
liveness-watchdog surface instead: ``SRC`` is a ``tcp://`` fleet DSN
(fleet-wide suspect counts and oldest waiter age aggregated by the
server from each client's metrics report) or a JSON file holding a
``Dimmunix.health()`` dump.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.report import ExperimentRecord

DEFAULT_RECORDS = Path("benchmarks/results/records.jsonl")


def load_records(path: Path) -> list[ExperimentRecord]:
    records: list[ExperimentRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
                records.append(
                    ExperimentRecord(
                        experiment_id=data["experiment_id"],
                        description=data["description"],
                        paper_value=data["paper_value"],
                        measured_value=data["measured_value"],
                        holds=bool(data["holds"]),
                        notes=data.get("notes", ""),
                        details=data.get("details", {}),
                    )
                )
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise SystemExit(
                    f"error: bad record at {path}:{line_number}: {exc}"
                )
    return records


def _render_text(records: list[ExperimentRecord]) -> str:
    lines = [record.render() for record in records]
    ok = sum(1 for record in records if record.holds)
    lines.append("")
    lines.append(f"{ok}/{len(records)} comparisons hold the paper's claim")
    return "\n".join(lines)


def _render_markdown(records: list[ExperimentRecord]) -> str:
    lines = [
        "| id | claim | paper | measured | holds |",
        "|---|---|---|---|---|",
    ]
    for record in records:
        holds = "yes" if record.holds else "**NO**"
        lines.append(
            f"| {record.experiment_id} | {record.description} "
            f"| {record.paper_value} | {record.measured_value} | {holds} |"
        )
    return "\n".join(lines)


def _render_history(spec: str) -> str:
    """The immunity block: antibody counts split by provenance."""
    from repro.tools.history_cli import _load

    history = _load(spec)
    counts = history.provenance_counts()
    lines = [
        f"immunity ({spec}): {len(history)} antibodies",
        f"  earned:    {counts.get('earned', 0)} (from real infections)",
        f"  promoted:  {counts.get('promoted', 0)} "
        "(predicted, later prevented a real deadlock)",
        f"  predicted: {counts.get('predicted', 0)} "
        "(seeded by lint/trace mining, not yet triggered)",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the metrics verb
# ----------------------------------------------------------------------

def _fleet_metrics(dsn: str) -> dict:
    """Query a fleet server's ``metrics`` op; shape for render_report."""
    import socket

    from repro.core.store.url import DEFAULT_FLEET_PORT
    from repro.fleet.protocol import read_frame, write_frame

    rest = dsn[len("tcp://") :]
    host, _, port_text = rest.partition(":")
    port = int(port_text) if port_text else DEFAULT_FLEET_PORT
    with socket.create_connection((host, port), timeout=5.0) as sock:
        write_frame(sock, {"op": "metrics"})
        reply = read_frame(sock)
    if not reply.get("ok"):
        raise SystemExit(
            f"error: {dsn}: {reply.get('error', 'metrics refused')}"
        )
    phases = {
        phase: aggregate["histogram"]
        for phase, aggregate in (reply.get("phases") or {}).items()
        if isinstance(aggregate, dict) and "histogram" in aggregate
    }
    gauges: dict = {"fleet_clients": reply.get("clients", 0)}
    if isinstance(reply.get("spill_depth"), (int, float)):
        gauges["fleet_spill_depth"] = reply["spill_depth"]
    if isinstance(reply.get("sync_lag_max_s"), (int, float)):
        gauges["fleet_sync_lag_max_seconds"] = reply["sync_lag_max_s"]
    health = reply.get("health")
    if isinstance(health, dict):
        for key, gauge in (
            ("oldest_waiter_age_ns", "fleet_oldest_waiter_age_ns"),
            ("suspected_now", "fleet_livelock_suspected_now"),
            ("livelock_suspects", "fleet_livelock_suspects"),
            ("watchdog_mitigations", "fleet_watchdog_mitigations"),
        ):
            if isinstance(health.get(key), (int, float)):
                gauges[gauge] = health[key]
    return {"phases": phases, "gauges": gauges}


def _report_from_events(path: Path) -> dict:
    """Derive a telemetry report from an events JSONL's ts_ns stamps."""
    from repro.telemetry.histogram import LogHistogram

    acquire = LogHistogram()
    park = LogHistogram()
    pending_request: dict[tuple, int] = {}
    pending_park: dict[tuple, int] = {}
    counts: dict[str, int] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(data, dict):
                continue
            kind = data.get("kind", "?")
            counts[kind] = counts.get(kind, 0) + 1
            ts_ns = data.get("ts_ns")
            if not isinstance(ts_ns, int) or ts_ns <= 0:
                continue
            key = (data.get("source", "?"), str(data.get("thread", "")))
            if kind == "request":
                pending_request[key] = ts_ns
            elif kind == "acquired":
                started = pending_request.pop(key, None)
                if started is not None and ts_ns >= started:
                    acquire.record(ts_ns - started)
            elif kind == "yield":
                pending_park[key] = ts_ns
            elif kind == "resume":
                started = pending_park.pop(key, None)
                if started is not None and ts_ns >= started:
                    park.record(ts_ns - started)
    phases: dict = {}
    if acquire.count:
        phases["acquire"] = acquire.to_json()
    if park.count:
        phases["yield_park"] = park.to_json()
    counters = {
        f"events_{kind.replace('-', '_')}": count
        for kind, count in counts.items()
    }
    return {"phases": phases, "counters": counters}


def _load_report(path: Path) -> dict:
    """A telemetry-report JSON file, or an events JSONL to derive from."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError):
        data = None
    if isinstance(data, dict) and "phases" in data:
        return data
    return _report_from_events(path)


def cmd_metrics(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="dimmunix-report metrics",
        description=(
            "Render telemetry as Prometheus text exposition. SRC is a "
            "tcp:// fleet DSN (live fleet-wide query), a telemetry-report "
            "JSON file, or an events JSONL recording."
        ),
    )
    parser.add_argument(
        "src", help="tcp:// DSN, telemetry report JSON, or events JSONL"
    )
    args = parser.parse_args(argv)
    from repro.telemetry.prometheus import render_report

    if args.src.startswith("tcp://"):
        try:
            report = _fleet_metrics(args.src)
        except OSError as error:
            print(f"error: {args.src}: {error}", file=sys.stderr)
            return 2
    else:
        path = Path(args.src)
        if not path.exists():
            print(f"error: {path} does not exist", file=sys.stderr)
            return 2
        report = _load_report(path)
    text = render_report(report)
    if not text:
        print(f"no telemetry in {args.src}", file=sys.stderr)
        return 1
    print(text, end="")
    return 0


# ----------------------------------------------------------------------
# the health verb
# ----------------------------------------------------------------------

def _format_age_ms(age_ns) -> str:
    if not isinstance(age_ns, (int, float)) or age_ns <= 0:
        return "0ms"
    return f"{age_ns / 1e6:.1f}ms"


def _fleet_health(dsn: str) -> dict:
    """Query a fleet server's ``metrics`` op; return its health block."""
    import socket

    from repro.core.store.url import DEFAULT_FLEET_PORT
    from repro.fleet.protocol import read_frame, write_frame

    rest = dsn[len("tcp://") :]
    host, _, port_text = rest.partition(":")
    port = int(port_text) if port_text else DEFAULT_FLEET_PORT
    with socket.create_connection((host, port), timeout=5.0) as sock:
        write_frame(sock, {"op": "metrics"})
        reply = read_frame(sock)
    if not reply.get("ok"):
        raise SystemExit(
            f"error: {dsn}: {reply.get('error', 'metrics refused')}"
        )
    health = reply.get("health")
    return health if isinstance(health, dict) else {}


def _render_health(health: dict, origin: str) -> str:
    suspected = health.get("suspected_now", 0)
    oldest = health.get("oldest_waiter_age_ns", 0)
    lines = [
        f"health ({origin}): {suspected} suspect(s) now, "
        f"oldest waiter {_format_age_ms(oldest)}",
        f"  suspicions: {health.get('livelock_suspects', 0)}  "
        f"mitigations: {health.get('watchdog_mitigations', 0)}",
    ]
    if "clients" in health:
        lines.append(f"  reporting clients: {health['clients']}")
    if "scans" in health:
        watchdog = "on" if health.get("watchdog") else "off"
        lines.append(
            f"  watchdog: {watchdog}  scans: {health['scans']}"
        )
    cores = health.get("cores")
    if isinstance(cores, dict) and cores:
        lines.append("  cores:")
        for name in sorted(cores):
            entry = cores[name] if isinstance(cores[name], dict) else {}
            lines.append(
                f"    {name}: {entry.get('suspected_now', 0)} suspect(s), "
                f"oldest {_format_age_ms(entry.get('oldest_waiter_age_ns'))}"
            )
    return "\n".join(lines)


def cmd_health(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="dimmunix-report health",
        description=(
            "Render liveness-watchdog health. SRC is a tcp:// fleet DSN "
            "(fleet-wide aggregate from the server's metrics op) or a "
            "JSON file holding a Dimmunix.health() dump."
        ),
    )
    parser.add_argument(
        "src", help="tcp:// DSN or a Dimmunix.health() JSON dump"
    )
    args = parser.parse_args(argv)
    if args.src.startswith("tcp://"):
        try:
            health = _fleet_health(args.src)
        except OSError as error:
            print(f"error: {args.src}: {error}", file=sys.stderr)
            return 2
        if not health or not health.get("clients"):
            print(f"no health reports at {args.src}", file=sys.stderr)
            return 1
    else:
        path = Path(args.src)
        if not path.exists():
            print(f"error: {path} does not exist", file=sys.stderr)
            return 2
        try:
            health = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            print(f"error: {path}: not JSON ({error})", file=sys.stderr)
            return 2
        if not isinstance(health, dict) or "oldest_waiter_age_ns" not in health:
            print(
                f"error: {path}: not a Dimmunix.health() dump",
                file=sys.stderr,
            )
            return 2
    print(_render_health(health, args.src))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    arglist = list(argv) if argv is not None else sys.argv[1:]
    if arglist and arglist[0] == "metrics":
        return cmd_metrics(arglist[1:])
    if arglist and arglist[0] == "health":
        return cmd_health(arglist[1:])
    parser = argparse.ArgumentParser(
        prog="dimmunix-report",
        description="Render benchmark paper-vs-measured records.",
        epilog=(
            "The 'metrics' verb renders telemetry instead "
            "(dimmunix-report metrics SRC), and the 'health' verb "
            "renders liveness-watchdog health (dimmunix-report health "
            "SRC); see each verb's --help."
        ),
    )
    parser.add_argument(
        "records",
        nargs="?",
        default=str(DEFAULT_RECORDS),
        help=f"records file (default: {DEFAULT_RECORDS})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "markdown"),
        default="text",
    )
    parser.add_argument(
        "--only",
        help="filter to experiment ids starting with this prefix (e.g. E1)",
    )
    parser.add_argument(
        "--failing",
        action="store_true",
        help="show only records where the paper's claim did not hold",
    )
    parser.add_argument(
        "--history",
        metavar="SRC",
        help=(
            "also report this history's antibodies split by provenance "
            "(earned / promoted / predicted); path or DSN"
        ),
    )
    args = parser.parse_args(arglist)

    path = Path(args.records)
    if not path.exists():
        if args.history:
            # No bench records is fine when the ask is the immunity
            # report itself.
            print(_render_history(args.history))
            return 0
        print(
            f"error: {path} not found - run `pytest benchmarks/ "
            "--benchmark-only` first",
            file=sys.stderr,
        )
        return 2
    records = load_records(path)
    if args.only:
        records = [
            record
            for record in records
            if record.experiment_id.startswith(args.only)
        ]
    if args.failing:
        records = [record for record in records if not record.holds]
        if not records:
            print("all recorded comparisons hold")
            return 0
    if not records:
        print("no matching records", file=sys.stderr)
        return 1
    renderer = _render_markdown if args.format == "markdown" else _render_text
    print(renderer(records))
    if args.history:
        print()
        print(_render_history(args.history))
    return 0 if all(record.holds for record in records) else 1


if __name__ == "__main__":
    sys.exit(main())
