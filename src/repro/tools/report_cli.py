"""``dimmunix-report`` — render benchmark records as a readable report.

The benchmark harness appends one JSON object per paper-vs-measured
comparison to ``benchmarks/results/records.jsonl``; this tool turns that
file into the summary block (the same rendering the terminal shows) or a
markdown table ready to paste into EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.report import ExperimentRecord

DEFAULT_RECORDS = Path("benchmarks/results/records.jsonl")


def load_records(path: Path) -> list[ExperimentRecord]:
    records: list[ExperimentRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
                records.append(
                    ExperimentRecord(
                        experiment_id=data["experiment_id"],
                        description=data["description"],
                        paper_value=data["paper_value"],
                        measured_value=data["measured_value"],
                        holds=bool(data["holds"]),
                        notes=data.get("notes", ""),
                        details=data.get("details", {}),
                    )
                )
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise SystemExit(
                    f"error: bad record at {path}:{line_number}: {exc}"
                )
    return records


def _render_text(records: list[ExperimentRecord]) -> str:
    lines = [record.render() for record in records]
    ok = sum(1 for record in records if record.holds)
    lines.append("")
    lines.append(f"{ok}/{len(records)} comparisons hold the paper's claim")
    return "\n".join(lines)


def _render_markdown(records: list[ExperimentRecord]) -> str:
    lines = [
        "| id | claim | paper | measured | holds |",
        "|---|---|---|---|---|",
    ]
    for record in records:
        holds = "yes" if record.holds else "**NO**"
        lines.append(
            f"| {record.experiment_id} | {record.description} "
            f"| {record.paper_value} | {record.measured_value} | {holds} |"
        )
    return "\n".join(lines)


def _render_history(spec: str) -> str:
    """The immunity block: antibody counts split by provenance."""
    from repro.tools.history_cli import _load

    history = _load(spec)
    counts = history.provenance_counts()
    lines = [
        f"immunity ({spec}): {len(history)} antibodies",
        f"  earned:    {counts.get('earned', 0)} (from real infections)",
        f"  promoted:  {counts.get('promoted', 0)} "
        "(predicted, later prevented a real deadlock)",
        f"  predicted: {counts.get('predicted', 0)} "
        "(seeded by lint/trace mining, not yet triggered)",
    ]
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="dimmunix-report",
        description="Render benchmark paper-vs-measured records.",
    )
    parser.add_argument(
        "records",
        nargs="?",
        default=str(DEFAULT_RECORDS),
        help=f"records file (default: {DEFAULT_RECORDS})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "markdown"),
        default="text",
    )
    parser.add_argument(
        "--only",
        help="filter to experiment ids starting with this prefix (e.g. E1)",
    )
    parser.add_argument(
        "--failing",
        action="store_true",
        help="show only records where the paper's claim did not hold",
    )
    parser.add_argument(
        "--history",
        metavar="SRC",
        help=(
            "also report this history's antibodies split by provenance "
            "(earned / promoted / predicted); path or DSN"
        ),
    )
    args = parser.parse_args(argv)

    path = Path(args.records)
    if not path.exists():
        if args.history:
            # No bench records is fine when the ask is the immunity
            # report itself.
            print(_render_history(args.history))
            return 0
        print(
            f"error: {path} not found - run `pytest benchmarks/ "
            "--benchmark-only` first",
            file=sys.stderr,
        )
        return 2
    records = load_records(path)
    if args.only:
        records = [
            record
            for record in records
            if record.experiment_id.startswith(args.only)
        ]
    if args.failing:
        records = [record for record in records if not record.holds]
        if not records:
            print("all recorded comparisons hold")
            return 0
    if not records:
        print("no matching records", file=sys.stderr)
        return 1
    renderer = _render_markdown if args.format == "markdown" else _render_text
    print(renderer(records))
    if args.history:
        print()
        print(_render_history(args.history))
    return 0 if all(record.holds for record in records) else 1


if __name__ == "__main__":
    sys.exit(main())
