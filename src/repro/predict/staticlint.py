"""The static lint front: source in, diagnostics + signatures out.

Drives :mod:`repro.predict.astwalk` over a set of Python files, merges
every module's order edges into one :class:`LockOrderGraph` (cross-file
cycles through shared ``lock:<name>`` classes included), and turns each
cycle into a :class:`LintDiagnostic` — a ``file:line`` report with the
cycle path and a confidence estimate — plus a candidate *predicted*
:class:`~repro.core.signature.DeadlockSignature` ready for
``History.add_predicted``. The ``dimmunix-lint`` console script
(:mod:`repro.tools.lint_cli`) is a thin shell around :func:`lint_paths`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

from repro.core.signature import DeadlockSignature
from repro.predict.astwalk import ModuleSummary, analyze_source
from repro.predict.lockgraph import (
    DEFAULT_MAX_CYCLE,
    Cycle,
    LockOrderGraph,
    compile_cycle,
)


@dataclass(frozen=True)
class LintDiagnostic:
    """One reported lock-order cycle."""

    file: str
    line: int
    cycle: str
    confidence: float
    positions: tuple[tuple[str, int], ...]
    signature: Optional[DeadlockSignature]

    def render(self) -> str:
        where = " held at ".join(
            f"{file}:{line}" for file, line in self.positions
        )
        return (
            f"{self.file}:{self.line}: lock-order cycle {self.cycle} "
            f"(confidence {self.confidence:.2f}; acquired at {where})"
        )


def _collect_files(paths: Iterable[Path | str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    # Stable order, no duplicates: diagnostics must be deterministic.
    seen: set[Path] = set()
    ordered: list[Path] = []
    for path in files:
        if path not in seen:
            seen.add(path)
            ordered.append(path)
    return ordered


def _diagnose(cycle: Cycle) -> LintDiagnostic:
    first = cycle.edges[0]
    positions = tuple(
        (edge.inner.file, edge.inner.line) for edge in cycle.edges
    )
    return LintDiagnostic(
        file=first.outer.file,
        line=first.outer.line,
        cycle=cycle.path(),
        confidence=cycle.confidence,
        positions=positions,
        signature=compile_cycle(cycle),
    )


def lint_summaries(
    summaries: Iterable[ModuleSummary],
    *,
    min_confidence: float = 0.0,
    max_cycle: int = DEFAULT_MAX_CYCLE,
) -> list[LintDiagnostic]:
    """Cycle diagnostics over already-analyzed modules (one shared graph)."""
    graph = LockOrderGraph()
    for summary in summaries:
        graph.extend(summary.edges)
    diagnostics = []
    seen: set = set()
    for cycle in graph.cycles(max_len=max_cycle):
        diagnostic = _diagnose(cycle)
        if diagnostic.confidence < min_confidence:
            continue
        if diagnostic.signature is None:
            continue
        key = diagnostic.signature.canonical_key()
        if key in seen:
            continue
        seen.add(key)
        diagnostics.append(diagnostic)
    diagnostics.sort(key=lambda d: (d.file, d.line, d.cycle))
    return diagnostics


def lint_source(
    source: str, path: str = "<string>", *, min_confidence: float = 0.0
) -> list[LintDiagnostic]:
    """Lint one module given as source text."""
    return lint_summaries(
        [analyze_source(source, path)], min_confidence=min_confidence
    )


def lint_paths(
    paths: Iterable[Path | str],
    *,
    min_confidence: float = 0.0,
    max_cycle: int = DEFAULT_MAX_CYCLE,
) -> tuple[list[LintDiagnostic], list[str]]:
    """Lint files/directories; returns ``(diagnostics, errors)``.

    ``errors`` holds human-readable messages for files that could not
    be read or parsed (they never abort the rest of the lint).
    """
    summaries: list[ModuleSummary] = []
    errors: list[str] = []
    for path in _collect_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            errors.append(f"{path}: unreadable ({exc})")
            continue
        try:
            summaries.append(analyze_source(source, str(path)))
        except SyntaxError as exc:
            errors.append(f"{path}: not parseable ({exc.msg}, line {exc.lineno})")
    return (
        lint_summaries(
            summaries, min_confidence=min_confidence, max_cycle=max_cycle
        ),
        errors,
    )


__all__ = ["LintDiagnostic", "lint_paths", "lint_source", "lint_summaries"]
