"""Bridge from the prediction fronts into a live history.

Both fronts end in the same move: hand a batch of candidate signatures
to ``History.add_predicted`` so the engine starts avoiding them on the
next run. :func:`seed_predictions` is that move for any mix of
:class:`~repro.predict.staticlint.LintDiagnostic`,
:class:`~repro.predict.tracemine.Prediction`, or bare
:class:`~repro.core.signature.DeadlockSignature` objects;
:func:`lint_and_seed` / :func:`mine_and_seed` are the one-call forms
used by ``dimmunix-lint --seed`` and ``dimmunix-events mine --seed``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Union

from repro.core.history import History, open_history
from repro.core.signature import DeadlockSignature
from repro.core.store import parse_history_url
from repro.core.store.url import SCHEME_MEM, HistoryUrlError
from repro.predict.staticlint import LintDiagnostic, lint_paths
from repro.predict.tracemine import Prediction, mine_trace_file

Seedable = Union[LintDiagnostic, Prediction, DeadlockSignature]


def seed_predictions(
    history: History,
    items: Iterable[Seedable],
    *,
    origin: str = "predict",
) -> int:
    """Seed predicted antibodies into ``history``; return how many stuck.

    Duplicates (including predictions of already-earned bugs) are
    silently skipped by the store, so re-seeding after every lint run
    is safe and idempotent. ``origin`` labels the
    ``predicted-seeded`` events for items that do not carry their own
    (a :class:`Prediction` does; a diagnostic or bare signature does
    not).
    """
    added = 0
    for item in items:
        if isinstance(item, DeadlockSignature):
            signature, confidence, item_origin = item, 1.0, origin
        elif isinstance(item, Prediction):
            signature = item.signature
            confidence = item.confidence
            item_origin = item.origin
        else:
            signature = item.signature
            confidence = item.confidence
            item_origin = "staticlint"
        if signature is None:
            continue
        if history.add_predicted(
            signature, origin=item_origin, confidence=confidence
        ):
            added += 1
    return added


def seed_history_spec(spec: str, items: Iterable[Seedable]) -> int:
    """Seed predictions into a history named by path or DSN.

    The shared write path of ``dimmunix-lint --seed`` and
    ``dimmunix-events mine --seed``: a ``jsonl://`` / ``sqlite://`` DSN
    opens the backend (created if missing); a plain path reads/writes
    the legacy flat format. Returns how many predictions were new.
    """
    if "://" in spec:
        url = parse_history_url(spec)
        if url.scheme == SCHEME_MEM:
            raise HistoryUrlError("mem:// holds no data across runs")
        history = open_history(spec, max_signatures=1_000_000)
        try:
            seeded = seed_predictions(history, items)
            history.flush()
        finally:
            history.close()
        return seeded
    path = Path(spec)
    if path.exists():
        history = History.load(path, max_signatures=1_000_000)
    else:
        history = History(max_signatures=1_000_000)
    seeded = seed_predictions(history, items)
    history.save(path)
    return seeded


def lint_and_seed(
    history: History,
    paths: Iterable[Union[str, Path]],
    *,
    min_confidence: float = 0.0,
) -> tuple[int, list[LintDiagnostic], list[str]]:
    """Static-lint ``paths`` and seed every finding into ``history``.

    Returns ``(seeded, diagnostics, errors)``.
    """
    diagnostics, errors = lint_paths(paths, min_confidence=min_confidence)
    return seed_predictions(history, diagnostics), diagnostics, errors


def mine_and_seed(
    history: History,
    trace: Union[str, Path],
    *,
    min_confidence: float = 0.0,
) -> tuple[int, list[Prediction]]:
    """Mine a recorded trace and seed every prediction into ``history``.

    Returns ``(seeded, predictions)``.
    """
    predictions = mine_trace_file(trace, min_confidence=min_confidence)
    return seed_predictions(history, predictions), predictions


__all__ = [
    "seed_predictions",
    "seed_history_spec",
    "lint_and_seed",
    "mine_and_seed",
]
