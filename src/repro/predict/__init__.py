"""Predictive immunity — antibodies *before* the first infection.

The paper's immunity model requires one infection per signature: the
engine only avoids deadlocks it has already suffered. This package adds
the two prediction fronts that close the gap (both from PAPERS.md):

* :mod:`repro.predict.staticlint` — a static lock-order analyzer in the
  style of "Sound Static Deadlock Analysis for C/Pthreads"
  (arXiv:1607.06927): walk Python source for lock acquisition
  structure, build an interprocedural lock-order graph over may-alias
  classes, and report cycles as lint diagnostics. Surfaced as the
  ``dimmunix-lint`` console script.
* :mod:`repro.predict.tracemine` — a dynamic predictor in the style of
  "Beyond Per-Thread Lock Sets" (arXiv:2512.23552): replay a recorded
  ``dimmunix-events`` stream from a run that never deadlocked and mint
  signatures from lock-order reversals between threads.

Both fronts compile their findings into ordinary
:class:`~repro.core.signature.DeadlockSignature` objects carrying
``provenance="predicted"`` and seed them through
``History.add_predicted`` — after which the existing engine avoids them
exactly like earned antibodies, counts the avoidances separately, and
*promotes* a prediction the first time it prevents a real deadlock.
"""

from repro.predict.lockgraph import LockOrderGraph, compile_cycle
from repro.predict.staticlint import LintDiagnostic, lint_paths, lint_source
from repro.predict.tracemine import Prediction, mine_events, mine_trace_file
from repro.predict.harness import seed_predictions

__all__ = [
    "LockOrderGraph",
    "compile_cycle",
    "LintDiagnostic",
    "lint_paths",
    "lint_source",
    "Prediction",
    "mine_events",
    "mine_trace_file",
    "seed_predictions",
]
