"""AST extraction of lock-acquisition structure from Python source.

The static front end of :mod:`repro.predict`: parse a module (never
import it), identify which expressions denote locks, and record every
*ordered* acquisition — "lock B was acquired while lock A was held, at
these lines". The result feeds :mod:`repro.predict.lockgraph`, which
finds cycles.

Lock identity is approximated by **may-alias classes**:

* ``x = runtime.lock("account-a")`` — a constructor call with a string
  literal names the class ``lock:account-a``; the same name in another
  module is the same class (that is how cross-module cycles are found).
* ``forks = [runtime.lock(f"fork-{i}") for i in range(n)]`` — a
  constructor inside a comprehension/loop/collection makes a
  *multi-instance* class: many distinct locks share one source
  position, so acquiring two members of the class in a nested pair is a
  potential deadlock even though the graph edge is a self-loop.
* ``self.cond = runtime.condition()`` — per-class attribute classes
  (``attr:Looper.cond``).
* a bare name with no visible binding (typically a function parameter)
  falls back to the *name class* ``var:<file>:<name>`` — two functions
  in one module acquiring parameters named ``account_a`` / ``account_b``
  in opposite orders alias by name. Weak, hence lower confidence, but
  exactly what catches thread-target functions whose arguments are
  built elsewhere.

Recognized acquisition forms: ``with``/``async with`` (including
multiple items and ``synchronized(obj)``), ``.acquire()`` /
``.release()`` method pairs (plus ``.lock()``/``.unlock()`` wrappers),
and the ``@synchronized_method`` decorator. Call sites of same-module
functions propagate the held set one level into the callee
(interprocedural edges, parameter-substituted).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

# Constructor method names on the facade / runtimes that return locks.
_CTOR_METHODS = {
    "lock",
    "rlock",
    "condition",
    "aio_lock",
    "aio_rlock",
    "aio_condition",
    "cross_lock",
}
# Constructor attribute/class names from threading / asyncio.
_CTOR_TYPES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}

_ACQUIRE_METHODS = {"acquire", "lock"}
_RELEASE_METHODS = {"release", "unlock"}

# Resolution strengths, folded into cycle confidence by lockgraph.
STRENGTH_CTOR = 0.9
STRENGTH_ATTR = 0.7
STRENGTH_NAME = 0.55


@dataclass(frozen=True)
class LockClass:
    """One may-alias class of lock objects."""

    id: str
    multi: bool = False
    strength: float = STRENGTH_CTOR


@dataclass(frozen=True)
class Acquisition:
    """One syntactic lock acquisition: class + canonical position."""

    cls: LockClass
    file: str
    line: int


@dataclass(frozen=True)
class OrderEdge:
    """``inner`` was acquired while ``outer`` was held."""

    outer: Acquisition
    inner: Acquisition
    function: str = ""
    interproc: bool = False

    @property
    def confidence(self) -> float:
        conf = min(self.outer.cls.strength, self.inner.cls.strength)
        if self.outer.cls.id == self.inner.cls.id:
            conf = min(conf, 0.6)  # self-loop on a multi-instance class
        if self.interproc:
            conf *= 0.9
        return round(conf, 3)


@dataclass
class FunctionInfo:
    """Per-function summary used for one-level call expansion."""

    name: str
    params: tuple[str, ...]
    acquisitions: list[Acquisition] = field(default_factory=list)


@dataclass
class ModuleSummary:
    """Everything the analyzer extracted from one source file."""

    path: str
    acquisitions: list[Acquisition] = field(default_factory=list)
    edges: list[OrderEdge] = field(default_factory=list)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)


class _Env:
    """A chained name -> LockClass scope."""

    def __init__(self, parent: Optional["_Env"] = None) -> None:
        self.parent = parent
        self.names: dict[str, LockClass] = {}

    def lookup(self, name: str) -> Optional[LockClass]:
        env: Optional[_Env] = self
        while env is not None:
            if name in env.names:
                return env.names[name]
            env = env.parent
        return None


def _string_arg(call: ast.Call) -> Optional[str]:
    for arg in call.args:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    return None


def _multi_name_arg(call: ast.Call) -> Optional[str]:
    """An f-string argument names a lock *family* (``f"fork-{i}"``)."""
    for arg in call.args:
        if isinstance(arg, ast.JoinedStr):
            prefix = "".join(
                part.value
                for part in arg.values
                if isinstance(part, ast.Constant)
                and isinstance(part.value, str)
            )
            return f"{prefix}*"
    return None


def _is_lock_ctor(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr in _CTOR_METHODS or func.attr in _CTOR_TYPES
    if isinstance(func, ast.Name):
        return (
            func.id in _CTOR_TYPES
            or func.id.endswith("Lock")
            or func.id in _CTOR_METHODS
        )
    return False


class _Analyzer:
    """Walks one module, populating a :class:`ModuleSummary`."""

    def __init__(self, tree: ast.Module, path: str) -> None:
        self.path = path
        self.summary = ModuleSummary(path=path)
        # (callee name, arg classes, held snapshot) for one-level
        # interprocedural expansion after the whole module is walked.
        self.callsites: list[
            tuple[str, list[Optional[LockClass]], tuple[Acquisition, ...]]
        ] = []
        self._fn_stack: list[str] = []
        module_env = _Env()
        self._walk_body(tree.body, module_env, held=[], selfcls=None)
        self._expand_callsites()

    # -- alias-class construction --------------------------------------

    def _ctor_class(
        self, call: ast.Call, bound_name: str, multi: bool
    ) -> LockClass:
        literal = _string_arg(call)
        if literal is not None:
            return LockClass(f"lock:{literal}", multi=multi)
        family = _multi_name_arg(call)
        if family is not None:
            return LockClass(f"lock:{family}", multi=True)
        return LockClass(
            f"lock:{self.path}:{bound_name}", multi=multi
        )

    def _collection_ctor(self, value: ast.expr) -> Optional[ast.Call]:
        """The ctor call inside a list/comprehension, if any."""
        if isinstance(value, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            elt = value.elt
            if isinstance(elt, ast.Call) and _is_lock_ctor(elt):
                return elt
        if isinstance(value, (ast.List, ast.Tuple)):
            for elt in value.elts:
                if isinstance(elt, ast.Call) and _is_lock_ctor(elt):
                    return elt
        return None

    def resolve(
        self, expr: ast.expr, env: _Env, selfcls: Optional[str]
    ) -> Optional[LockClass]:
        """The may-alias class an expression denotes, or ``None``."""
        if isinstance(expr, ast.Name):
            found = env.lookup(expr.id)
            if found is not None:
                return found
            # Unbound name (typically a parameter): alias by name,
            # scoped to the file so generic names don't link modules.
            return LockClass(
                f"var:{self.path}:{expr.id}",
                multi=False,
                strength=STRENGTH_NAME,
            )
        if isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and selfcls is not None
            ):
                found = env.lookup(f"self.{expr.attr}")
                if found is not None:
                    return found
                return LockClass(
                    f"attr:{selfcls}.{expr.attr}",
                    multi=False,
                    strength=STRENGTH_ATTR,
                )
            try:
                text = ast.unparse(expr)
            except Exception:  # pragma: no cover - unparse is total on 3.9+
                return None
            return LockClass(
                f"expr:{self.path}:{text}",
                multi=False,
                strength=STRENGTH_NAME,
            )
        if isinstance(expr, ast.Subscript):
            base = (
                self.resolve(expr.value, env, selfcls)
                if isinstance(expr.value, (ast.Name, ast.Attribute))
                else None
            )
            if base is not None:
                # An element of a lock collection: same class, but now
                # explicitly multi-instance — two elements may differ.
                return LockClass(base.id, multi=True, strength=base.strength)
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            # ``with synchronized(obj):`` — the monitor of obj.
            if isinstance(func, ast.Name) and func.id == "synchronized":
                if expr.args:
                    inner = self.resolve(expr.args[0], env, selfcls)
                    if inner is not None:
                        return LockClass(
                            f"mon:{inner.id}", inner.multi, inner.strength
                        )
                return None
            if _is_lock_ctor(expr):
                # An anonymous inline ctor: position-named class.
                return self._ctor_class(expr, f"<anon:{expr.lineno}>", False)
        return None

    # -- the body walk --------------------------------------------------

    def _record_acq(
        self,
        cls: LockClass,
        line: int,
        held: list[Acquisition],
    ) -> Acquisition:
        acq = Acquisition(cls=cls, file=self.path, line=line)
        self.summary.acquisitions.append(acq)
        if self._fn_stack:
            info = self.summary.functions.get(self._fn_stack[-1])
            if info is not None:
                info.acquisitions.append(acq)
        for outer in held:
            if outer.cls.id == acq.cls.id and not acq.cls.multi:
                continue  # re-entering one singleton lock: not an order
            self.summary.edges.append(
                OrderEdge(
                    outer=outer,
                    inner=acq,
                    function=self._fn_stack[-1] if self._fn_stack else "",
                )
            )
        return acq

    def _walk_body(
        self,
        stmts: list[ast.stmt],
        env: _Env,
        held: list[Acquisition],
        selfcls: Optional[str],
    ) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt, env, held, selfcls)

    def _walk_stmt(
        self,
        stmt: ast.stmt,
        env: _Env,
        held: list[Acquisition],
        selfcls: Optional[str],
    ) -> None:
        if isinstance(stmt, ast.Assign):
            self._handle_assign(stmt, env, selfcls)
            self._scan_calls(stmt.value, env, held, selfcls)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            added: list[Acquisition] = []
            for item in stmt.items:
                cls = self.resolve(item.context_expr, env, selfcls)
                if cls is not None:
                    acq = self._record_acq(
                        cls, item.context_expr.lineno, held + added
                    )
                    added.append(acq)
            self._walk_body(stmt.body, env, held + added, selfcls)
            return
        if isinstance(stmt, ast.Expr):
            call = stmt.value
            if isinstance(call, ast.Call) and isinstance(
                call.func, ast.Attribute
            ):
                target = call.func.value
                if call.func.attr in _ACQUIRE_METHODS:
                    cls = self.resolve(target, env, selfcls)
                    # ``.lock()`` on a non-lock object would resolve to
                    # a weak var class; only track plausible targets.
                    if cls is not None:
                        held.append(
                            self._record_acq(cls, call.lineno, held)
                        )
                        return
                elif call.func.attr in _RELEASE_METHODS:
                    cls = self.resolve(target, env, selfcls)
                    if cls is not None:
                        for index in range(len(held) - 1, -1, -1):
                            if held[index].cls.id == cls.id:
                                del held[index]
                                break
                        return
            self._scan_calls(stmt.value, env, held, selfcls)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._handle_function(stmt, env, selfcls)
            return
        if isinstance(stmt, ast.ClassDef):
            self._handle_class(stmt, env)
            return
        if isinstance(stmt, (ast.If,)):
            self._scan_calls(stmt.test, env, held, selfcls)
            self._walk_body(stmt.body, env, list(held), selfcls)
            self._walk_body(stmt.orelse, env, list(held), selfcls)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._walk_body(stmt.body, env, list(held), selfcls)
            self._walk_body(stmt.orelse, env, list(held), selfcls)
            return
        if isinstance(stmt, ast.While):
            self._scan_calls(stmt.test, env, held, selfcls)
            self._walk_body(stmt.body, env, list(held), selfcls)
            self._walk_body(stmt.orelse, env, list(held), selfcls)
            return
        if isinstance(stmt, ast.Try):
            self._walk_body(stmt.body, env, list(held), selfcls)
            for handler in stmt.handlers:
                self._walk_body(handler.body, env, list(held), selfcls)
            self._walk_body(stmt.orelse, env, list(held), selfcls)
            self._walk_body(stmt.finalbody, env, list(held), selfcls)
            return
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            self._scan_calls(stmt.value, env, held, selfcls)

    @staticmethod
    def _bound_target_name(stmt: ast.Assign) -> str:
        if stmt.targets:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                return target.id
            if isinstance(target, ast.Attribute):
                return target.attr
        return f"<line:{stmt.lineno}>"

    def _handle_assign(
        self, stmt: ast.Assign, env: _Env, selfcls: Optional[str]
    ) -> None:
        value = stmt.value
        cls: Optional[LockClass] = None
        if isinstance(value, ast.Call) and _is_lock_ctor(value):
            cls = self._ctor_class(value, self._bound_target_name(stmt), multi=False)
        else:
            ctor = self._collection_ctor(value)
            # Aliasing assignments only propagate *known* classes — an
            # unbound RHS name is usually not a lock, so no var: class
            # is invented here.
            if ctor is not None:
                made = self._ctor_class(ctor, self._bound_target_name(stmt), multi=True)
                cls = LockClass(made.id, multi=True, strength=made.strength)
            elif isinstance(value, ast.Name):
                cls = env.lookup(value.id)
            elif isinstance(value, ast.Subscript):
                base = value.value
                if (
                    isinstance(base, ast.Name)
                    and env.lookup(base.id) is not None
                ):
                    cls = self.resolve(value, env, selfcls)
            elif isinstance(value, ast.Attribute):
                if (
                    isinstance(value.value, ast.Name)
                    and value.value.id == "self"
                ):
                    cls = env.lookup(f"self.{value.attr}")
        if cls is None:
            return
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                env.names[target.id] = cls
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                env.names[f"self.{target.attr}"] = cls

    def _handle_function(
        self,
        stmt: ast.FunctionDef | ast.AsyncFunctionDef,
        env: _Env,
        selfcls: Optional[str],
    ) -> None:
        params = tuple(arg.arg for arg in stmt.args.args)
        qual = (
            f"{selfcls}.{stmt.name}" if selfcls is not None else stmt.name
        )
        self.summary.functions[qual] = FunctionInfo(name=qual, params=params)
        fn_env = _Env(parent=env)
        fn_held: list[Acquisition] = []
        for decorator in stmt.decorator_list:
            name = (
                decorator.id
                if isinstance(decorator, ast.Name)
                else decorator.attr
                if isinstance(decorator, ast.Attribute)
                else None
            )
            if name == "synchronized_method" and selfcls is not None:
                monitor = LockClass(
                    f"mon:attr:{selfcls}.self",
                    multi=False,
                    strength=STRENGTH_ATTR,
                )
                self._fn_stack.append(qual)
                fn_held.append(
                    self._record_acq(monitor, stmt.lineno, fn_held)
                )
                self._fn_stack.pop()
        self._fn_stack.append(qual)
        self._walk_body(stmt.body, fn_env, fn_held, selfcls)
        self._fn_stack.pop()
        # Methods are also reachable by bare attribute name (obj.m()).
        if selfcls is not None:
            self.summary.functions.setdefault(
                stmt.name, self.summary.functions[qual]
            )

    def _handle_class(self, stmt: ast.ClassDef, env: _Env) -> None:
        cls_env = _Env(parent=env)
        # Pre-pass: self-attribute lock bindings anywhere in the class,
        # so methods defined before __init__ still resolve them.
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                self._handle_assign(node, cls_env, stmt.name)
        self._walk_body(stmt.body, cls_env, [], stmt.name)

    def _scan_calls(
        self,
        expr: ast.expr,
        env: _Env,
        held: list[Acquisition],
        selfcls: Optional[str],
    ) -> None:
        """Record call sites made while locks are held (one level)."""
        if not held:
            return
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            callee: Optional[str] = None
            if isinstance(node.func, ast.Name):
                callee = node.func.id
            elif isinstance(node.func, ast.Attribute):
                callee = node.func.attr
            if callee is None:
                continue
            args = [
                self.resolve(arg, env, selfcls)
                if isinstance(arg, (ast.Name, ast.Attribute, ast.Subscript))
                else None
                for arg in node.args
            ]
            self.callsites.append((callee, args, tuple(held)))

    def _expand_callsites(self) -> None:
        """One-level interprocedural expansion of held-over calls."""
        for callee, args, held in self.callsites:
            info = self.summary.functions.get(callee)
            if info is None:
                continue
            substitution = {
                f"var:{self.path}:{param}": cls
                for param, cls in zip(info.params, args)
                if cls is not None
            }
            for acq in info.acquisitions:
                cls = substitution.get(acq.cls.id, acq.cls)
                inner = Acquisition(cls=cls, file=acq.file, line=acq.line)
                for outer in held:
                    if outer.cls.id == inner.cls.id and not inner.cls.multi:
                        continue
                    self.summary.edges.append(
                        OrderEdge(
                            outer=outer,
                            inner=inner,
                            function=callee,
                            interproc=True,
                        )
                    )


def analyze_source(source: str, path: str) -> ModuleSummary:
    """Extract lock-order structure from one module's source text."""
    tree = ast.parse(source, filename=path)
    return _Analyzer(tree, path).summary


__all__ = [
    "LockClass",
    "Acquisition",
    "OrderEdge",
    "ModuleSummary",
    "analyze_source",
    "STRENGTH_CTOR",
    "STRENGTH_ATTR",
    "STRENGTH_NAME",
]
