"""The lock-order graph: cycles in it are predicted deadlocks.

Nodes are may-alias classes from :mod:`repro.predict.astwalk` (static
front) or concrete lock names (trace front); a directed edge ``A -> B``
records "B was acquired while A was held", annotated with the source
positions of both acquisitions. A cycle is a potential deadlock:

* a multi-node cycle (``A -> B -> A``) is the classic AB/BA inversion;
* a *self-loop* on a **multi-instance** class (a collection of locks
  acquired through one pair of source lines, e.g. the dining
  philosophers' ``forks[i]`` / ``forks[i+1]``) is the collapsed form —
  many distinct locks, one program position, circular wait among the
  instances. Self-loops on singleton classes are re-entrancy, not
  deadlock, and are never reported.

Every cycle compiles into a candidate
:class:`~repro.core.signature.DeadlockSignature` whose entries carry the
same canonical ``(file, line)`` position keys the runtime's depth-1
stacks produce — which is exactly what lets a *predicted* signature
match real acquisitions on the first run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.callstack import CallStack
from repro.core.signature import DeadlockSignature, SignatureEntry
from repro.predict.astwalk import Acquisition, OrderEdge

DEFAULT_MAX_CYCLE = 6


@dataclass(frozen=True)
class Cycle:
    """One lock-order cycle and its supporting edges."""

    edges: tuple[OrderEdge, ...]

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(edge.outer.cls.id for edge in self.edges)

    @property
    def confidence(self) -> float:
        return min(edge.confidence for edge in self.edges)

    @property
    def is_self_loop(self) -> bool:
        return len(self.edges) == 1

    def path(self) -> str:
        names = [_short(node) for node in self.nodes]
        names.append(_short(self.nodes[0]))
        return " -> ".join(names)


def _short(class_id: str) -> str:
    """A readable node label: drop the file-scoping of weak classes."""
    kind, _, rest = class_id.partition(":")
    if kind in ("var", "expr", "attr") and ":" in rest:
        rest = rest.rsplit(":", 1)[-1]
    if kind == "lock" and ":" in rest:
        rest = rest.rsplit(":", 1)[-1]
    return f"{kind}:{rest}" if kind != "lock" else rest


class LockOrderGraph:
    """A directed graph over lock classes with positioned edges."""

    def __init__(self) -> None:
        # (src, dst) -> the highest-confidence witness edge.
        self._edges: dict[tuple[str, str], OrderEdge] = {}
        self._successors: dict[str, set[str]] = {}

    def add_edge(self, edge: OrderEdge) -> None:
        src, dst = edge.outer.cls.id, edge.inner.cls.id
        if src == dst and not edge.inner.cls.multi:
            return  # singleton re-entry: never a deadlock order
        key = (src, dst)
        best = self._edges.get(key)
        if best is None or edge.confidence > best.confidence:
            self._edges[key] = edge
        self._successors.setdefault(src, set()).add(dst)
        self._successors.setdefault(dst, set())

    def extend(self, edges: Iterable[OrderEdge]) -> None:
        for edge in edges:
            self.add_edge(edge)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def cycles(self, max_len: int = DEFAULT_MAX_CYCLE) -> list[Cycle]:
        """Every simple cycle up to ``max_len`` edges, deduplicated.

        Rotations are collapsed by only starting a search at the
        lexicographically smallest node of each cycle.
        """
        found: list[Cycle] = []
        for (src, dst), edge in sorted(self._edges.items()):
            if src == dst:
                found.append(Cycle(edges=(edge,)))
        nodes = sorted(self._successors)
        for start in nodes:
            self._dfs(start, start, [], {start}, found, max_len)
        return found

    def _dfs(
        self,
        start: str,
        node: str,
        path: list[OrderEdge],
        on_path: set[str],
        found: list[Cycle],
        max_len: int,
    ) -> None:
        for succ in sorted(self._successors.get(node, ())):
            if succ == node:
                continue  # self-loops reported separately
            edge = self._edges[(node, succ)]
            if succ == start and path:
                found.append(Cycle(edges=tuple(path + [edge])))
                continue
            if succ in on_path or succ < start or len(path) + 1 >= max_len:
                continue
            on_path.add(succ)
            path.append(edge)
            self._dfs(start, succ, path, on_path, found, max_len)
            path.pop()
            on_path.discard(succ)


def _entry(outer: Acquisition, inner: Acquisition) -> SignatureEntry:
    return SignatureEntry(
        outer=CallStack.single(outer.file, outer.line),
        inner=CallStack.single(inner.file, inner.line),
    )


def compile_cycle(cycle: Cycle) -> Optional[DeadlockSignature]:
    """A candidate deadlock signature for one cycle, or ``None``.

    Multi-node cycles map one entry per edge (one per deadlocked
    thread). A multi-instance self-loop compiles to the two-entry
    *collapsed* form: two threads, one shared (outer, inner) position
    pair — the engine's slot-grouping matcher handles the rest.
    """
    if cycle.is_self_loop:
        edge = cycle.edges[0]
        if edge.outer.line == edge.inner.line and (
            edge.outer.file == edge.inner.file
        ):
            return None  # one position total: nothing the matcher can use
        entry = _entry(edge.outer, edge.inner)
        return DeadlockSignature([entry, entry])
    return DeadlockSignature(
        [_entry(edge.outer, edge.inner) for edge in cycle.edges]
    )


__all__ = ["LockOrderGraph", "Cycle", "compile_cycle", "DEFAULT_MAX_CYCLE"]
