"""The trace front: mine predicted signatures from a recorded run.

Replays a ``dimmunix-events`` stream (JSONL on disk, or live
:class:`~repro.core.events.Event` objects) from a run that never
deadlocked and looks for *lock-order reversals* between threads — the
Goodlock discipline: track each thread's held-lock set, record a
directed edge ``A -> B`` every time ``B`` is requested while ``A`` is
held, and report a cycle as a potential deadlock only when

* every edge in the cycle was witnessed by a **distinct** thread
  (one thread touring ``A -> B -> A`` alone cannot deadlock), and
* the witnesses' *gate sets* — the other locks each thread held at the
  time — are **pairwise disjoint** (a shared gate lock serializes the
  two acquisition sequences, so the reversal can never interleave into
  a deadlock).

Unlike the static front, positions here are the runtime's own canonical
call-stack keys lifted straight from the recorded ``request`` events,
so a minted signature matches real acquisitions byte-for-byte on the
very next run, at any configured stack depth.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.core.callstack import CallStack, Frame
from repro.core.events import Event, event_to_dict
from repro.core.signature import DeadlockSignature, SignatureEntry

# A lock as the miner sees it: one per (source, lock-name) so adapters
# multiplexed onto one bus never alias. Same shape for threads.
_Key = tuple[str, str]

# How many distinct (thread, gates) witnesses to keep per edge before
# assuming the edge is saturated. Cycles need one witness per edge with
# distinct threads and disjoint gates; a handful is plenty.
_MAX_WITNESSES = 16

CONFIDENCE_PAIR = 0.9
CONFIDENCE_LONG = 0.7


@dataclass(frozen=True)
class Prediction:
    """One mined candidate deadlock, ready for ``History.add_predicted``."""

    signature: DeadlockSignature
    confidence: float
    origin: str = "tracemine"
    cycle: str = ""

    def render(self) -> str:
        return (
            f"predicted deadlock {self.cycle} "
            f"(confidence {self.confidence:.2f}, via {self.origin})"
        )


@dataclass(frozen=True)
class _Witness:
    """One observed ``outer -> inner`` ordering by one thread."""

    thread: _Key
    outer_position: tuple
    inner_position: tuple
    gates: frozenset


def _to_position(value) -> tuple:
    """Wire-form position (nested lists) back to the canonical tuple key."""
    if isinstance(value, (list, tuple)):
        return tuple(_to_position(item) for item in value)
    return value


def _normalize(event: Union[Event, dict]) -> dict:
    if isinstance(event, Event):
        return event_to_dict(event)
    return event


def _stack(position: tuple) -> CallStack:
    return CallStack(Frame(str(file), int(line)) for file, line in position)


class _Miner:
    """Single pass over the event stream, building the reversal graph."""

    def __init__(self) -> None:
        # (source, thread) -> the lock key it is currently waiting for,
        # with the request's canonical position (acquired events carry
        # no position, so it must be remembered from the request).
        self._pending: dict[_Key, tuple[_Key, tuple]] = {}
        # (source, thread) -> held locks in acquisition order:
        # lock key -> [position, re-entry count].
        self._held: dict[_Key, dict[_Key, list]] = {}
        # (outer lock, inner lock) -> capped witness list.
        self.edges: dict[tuple[_Key, _Key], list[_Witness]] = {}
        self.events_seen = 0

    def feed(self, event: Union[Event, dict]) -> None:
        data = _normalize(event)
        kind = data.get("kind")
        if kind not in ("request", "acquired", "release"):
            return
        self.events_seen += 1
        source = str(data.get("source", "core"))
        thread: _Key = (source, str(data.get("thread", "")))
        lock: _Key = (source, str(data.get("lock", "")))
        if kind == "request":
            position = _to_position(data.get("position", ()))
            self._pending[thread] = (lock, position)
        elif kind == "acquired":
            self._on_acquired(thread, lock)
        else:
            self._on_release(thread, lock)

    def _on_acquired(self, thread: _Key, lock: _Key) -> None:
        pending = self._pending.pop(thread, None)
        if pending is None or pending[0] != lock:
            # Trace torn mid-request, or an adapter that never publishes
            # requests: nothing positional to mine from this acquisition.
            position: tuple = ()
        else:
            position = pending[1]
        held = self._held.setdefault(thread, {})
        slot = held.get(lock)
        if slot is not None:
            slot[1] += 1  # re-entrant re-acquire: never blocks, no edge
            return
        if position:
            gates = frozenset(held) - {lock}
            for outer_lock, (outer_position, _count) in held.items():
                if not outer_position:
                    continue
                self._record(
                    (outer_lock, lock),
                    _Witness(
                        thread=thread,
                        outer_position=outer_position,
                        inner_position=position,
                        gates=gates - {outer_lock},
                    ),
                )
        held[lock] = [position, 1]

    def _on_release(self, thread: _Key, lock: _Key) -> None:
        held = self._held.get(thread)
        if held is None:
            return
        slot = held.get(lock)
        if slot is None:
            return
        slot[1] -= 1
        if slot[1] <= 0:
            del held[lock]

    def _record(self, key: tuple[_Key, _Key], witness: _Witness) -> None:
        if key[0] == key[1]:
            return
        witnesses = self.edges.setdefault(key, [])
        if len(witnesses) >= _MAX_WITNESSES:
            return
        for existing in witnesses:
            if (
                existing.thread == witness.thread
                and existing.gates == witness.gates
            ):
                return
        witnesses.append(witness)


def _find_cycles(
    edges: dict[tuple[_Key, _Key], list[_Witness]], max_cycle: int
) -> list[tuple[_Key, ...]]:
    """Simple cycles over the reversal graph, smallest-start deduped."""
    successors: dict[_Key, list[_Key]] = {}
    for src, dst in edges:
        successors.setdefault(src, []).append(dst)
        successors.setdefault(dst, [])
    for succ in successors.values():
        succ.sort()
    cycles: list[tuple[_Key, ...]] = []

    def dfs(start: _Key, node: _Key, path: list[_Key], on_path: set) -> None:
        for succ in successors[node]:
            if succ == start and len(path) > 1:
                cycles.append(tuple(path))
                continue
            if succ in on_path or succ < start or len(path) >= max_cycle:
                continue
            on_path.add(succ)
            path.append(succ)
            dfs(start, succ, path, on_path)
            path.pop()
            on_path.discard(succ)

    for start in sorted(successors):
        dfs(start, start, [start], {start})
    return cycles


def _pick_witnesses(
    cycle: tuple[_Key, ...],
    edges: dict[tuple[_Key, _Key], list[_Witness]],
) -> Optional[list[_Witness]]:
    """One witness per cycle edge: distinct threads, disjoint gates."""
    edge_witnesses = [
        edges[(cycle[i], cycle[(i + 1) % len(cycle)])]
        for i in range(len(cycle))
    ]

    chosen: list[_Witness] = []

    def assign(index: int, threads: set, gates: frozenset) -> bool:
        if index == len(edge_witnesses):
            return True
        for witness in edge_witnesses[index]:
            if witness.thread in threads:
                continue
            if witness.gates & gates:
                continue
            chosen.append(witness)
            if assign(
                index + 1,
                threads | {witness.thread},
                gates | witness.gates,
            ):
                return True
            chosen.pop()
        return False

    return chosen if assign(0, set(), frozenset()) else None


def _cycle_label(cycle: tuple[_Key, ...]) -> str:
    names = [lock for _source, lock in cycle]
    names.append(names[0])
    return " -> ".join(names)


def mine_events(
    events: Iterable[Union[Event, dict]],
    *,
    max_cycle: int = 6,
    min_confidence: float = 0.0,
) -> list[Prediction]:
    """Mine predicted deadlock signatures from an event stream.

    Accepts live :class:`~repro.core.events.Event` objects or their
    ``dimmunix-events`` JSONL dict form, in bus order. Returns
    deduplicated predictions sorted by descending confidence.
    """
    miner = _Miner()
    for event in events:
        miner.feed(event)
    predictions: list[Prediction] = []
    seen: set = set()
    for cycle in _find_cycles(miner.edges, max_cycle):
        witnesses = _pick_witnesses(cycle, miner.edges)
        if witnesses is None:
            continue
        signature = DeadlockSignature(
            SignatureEntry(
                outer=_stack(witness.outer_position),
                inner=_stack(witness.inner_position),
            )
            for witness in witnesses
        )
        key = signature.canonical_key()
        if key in seen:
            continue
        confidence = (
            CONFIDENCE_PAIR if len(cycle) == 2 else CONFIDENCE_LONG
        )
        if confidence < min_confidence:
            continue
        seen.add(key)
        predictions.append(
            Prediction(
                signature=signature,
                confidence=confidence,
                cycle=_cycle_label(cycle),
            )
        )
    predictions.sort(key=lambda p: (-p.confidence, p.cycle))
    return predictions


def mine_trace_file(
    path: Union[str, Path],
    *,
    max_cycle: int = 6,
    min_confidence: float = 0.0,
) -> list[Prediction]:
    """Mine a ``dimmunix-events`` JSONL trace file on disk."""

    def lines() -> Iterable[dict]:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail of a live recording
                if isinstance(data, dict):
                    yield data

    return mine_events(
        lines(), max_cycle=max_cycle, min_confidence=min_confidence
    )


__all__ = [
    "Prediction",
    "mine_events",
    "mine_trace_file",
    "CONFIDENCE_PAIR",
    "CONFIDENCE_LONG",
]
