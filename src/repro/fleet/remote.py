"""``tcp://`` — the fleet-client history store.

A :class:`RemoteStore` looks exactly like any other ``HistoryStore`` to
the engine: O(1) in-memory matching, write-behind flushes, the same
conformance surface. Underneath, durability is a
:class:`~repro.fleet.server.FleetServer` across the network, reached
with blocking sockets (the store is driven from the write-behind
persister's worker thread, where blocking I/O with an explicit timeout
is the honest model).

Failure posture — the part that makes this safe to put on the lock
path's durability chain:

* Every request gets a bounded number of attempts with exponential
  backoff (``retry_attempts`` × ``retry_backoff``); a dead server costs
  a few seconds, never a hang.
* A failed *push* degrades to a local **spill journal** (legacy
  history format, append-only): the antibodies are durable on local
  disk before ``flush()`` returns, so an unreachable server never loses
  one. The journal is replayed — pushed and deleted — the next time the
  server answers, and the replay is counted
  (:attr:`spill_replayed`) so the sync pump can report it.
* A failed *pull* (``refresh``) raises
  :class:`FleetUnreachableError`; the sync pump counts it as a
  ``sync_failure`` and tries again next period.
* ``discard`` (prediction expiry) is best-effort by design: the server
  expires the same predictions on its other clients' schedules, so a
  missed discard only costs redundancy, never correctness.

Sync state is the server's ``(rev, gen)`` pair: ``rev`` counts the
server's insertions, ``gen`` changes when removals renumber them, and
:meth:`refresh` pulls only the unseen suffix (or a full resync after a
``gen`` bump).
"""

from __future__ import annotations

import os
import socket
import time
from pathlib import Path
from typing import Optional

from repro.core.signature import DeadlockSignature
from repro.core.store.base import HistoryStore
from repro.core.store.jsonl import (
    FORMAT_NAME,
    read_signatures,
    signature_line,
    write_snapshot,
)
from repro.core.store.sqlite import canonical_text
from repro.core.store.url import DEFAULT_FLEET_PORT, SCHEME_TCP
from repro.errors import DimmunixError, HistoryFormatError
from repro.fleet.protocol import (
    PROTOCOL_VERSION,
    FleetProtocolError,
    read_frame,
    write_frame,
)

#: where spill journals land unless the caller chooses (kept per
#: server so two fleets never interleave journals)
SPILL_DIR_ENV = "DIMMUNIX_SPILL_DIR"


class FleetError(DimmunixError):
    """The fleet server rejected an operation."""


class FleetUnreachableError(FleetError):
    """The fleet server could not be reached (transport failure)."""


class RemoteStore(HistoryStore):
    """History store whose durable backend is a ``FleetServer``."""

    scheme = SCHEME_TCP
    persistent = True

    def __init__(
        self,
        host: str,
        port: int = DEFAULT_FLEET_PORT,
        max_signatures: int = 4096,
        *,
        timeout: float = 5.0,
        retry_attempts: int = 3,
        retry_backoff: float = 0.05,
        spill_path: Optional[Path | str] = None,
    ) -> None:
        super().__init__(max_signatures=max_signatures)
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retry_attempts = max(1, retry_attempts)
        self._retry_backoff = retry_backoff
        self._spill_path = Path(
            spill_path
            if spill_path is not None
            else self._default_spill_path(host, port)
        )
        self._sock: Optional[socket.socket] = None
        self._synced_rev = 0
        self._generation = 0
        # Telemetry the sync pump folds into FleetSyncEvent.
        self.pushed = 0
        self.pulled = 0
        self.spilled = 0
        self.spill_replayed = 0
        self.failures = 0
        self._replay()

    @staticmethod
    def _default_spill_path(host: str, port: int) -> Path:
        base = os.environ.get(SPILL_DIR_ENV)
        root = Path(base) if base else Path.home() / ".dimmunix" / "spill"
        return root / f"{host.replace(':', '_')}-{port}.history"

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    @property
    def location(self) -> Optional[Path]:
        return None  # the backing state is a server, not a file

    @property
    def url(self) -> str:
        return f"{SCHEME_TCP}://{self._host}:{self._port}"

    @property
    def spill_path(self) -> Path:
        return self._spill_path

    @property
    def connected(self) -> bool:
        return self._sock is not None

    @property
    def synced_rev(self) -> int:
        return self._synced_rev

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        write_frame(
            sock,
            {
                "op": "hello",
                "format": FORMAT_NAME,
                "version": PROTOCOL_VERSION,
            },
        )
        reply = read_frame(sock)
        if not reply.get("ok"):
            sock.close()
            # An incompatible server is a configuration error, not an
            # outage: retrying or spilling would never converge.
            raise HistoryFormatError(
                f"{self.url}: {reply.get('error', 'handshake refused')}"
            )
        return sock

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _request(self, payload: dict) -> dict:
        """One round-trip with bounded retry; raises on failure.

        :class:`FleetUnreachableError` after ``retry_attempts`` transport
        failures; :class:`FleetError` when the server answers but says
        no.
        """
        last_error: Optional[Exception] = None
        for attempt in range(self._retry_attempts):
            if attempt:
                time.sleep(self._retry_backoff * (2 ** (attempt - 1)))
            try:
                if self._sock is None:
                    self._sock = self._connect()
                write_frame(self._sock, payload)
                reply = read_frame(self._sock)
            except (ConnectionError, OSError, FleetProtocolError) as exc:
                last_error = exc
                self._drop_connection()
                continue
            if not reply.get("ok"):
                raise FleetError(
                    f"{self.url}: server refused "
                    f"{payload.get('op')!r}: {reply.get('error')}"
                )
            return reply
        self.failures += 1
        raise FleetUnreachableError(
            f"{self.url} unreachable after {self._retry_attempts} "
            f"attempt(s): {last_error}"
        ) from last_error

    # ------------------------------------------------------------------
    # spill journal (local durability while the server is away)
    # ------------------------------------------------------------------

    def _spill(self, batch: tuple[DeadlockSignature, ...]) -> None:
        self._spill_path.parent.mkdir(parents=True, exist_ok=True)
        if not self._spill_path.exists():
            write_snapshot(self._spill_path, batch)
        else:
            with open(self._spill_path, "a", encoding="utf-8") as handle:
                for signature in batch:
                    handle.write(signature_line(signature))
                handle.flush()
                os.fsync(handle.fileno())
        self.spilled += len(batch)

    def _replay_spill(self) -> int:
        """Push the spill journal to the server; delete it on success.

        Returns how many spilled signatures were replayed. Raises
        :class:`FleetUnreachableError` if the server is still away (the
        journal stays put).
        """
        if not self._spill_path.exists():
            return 0
        spilled = [
            signature
            for _line, signature in read_signatures(
                self._spill_path, tolerate_torn_tail=True
            )
        ]
        if spilled:
            self._request(
                {
                    "op": "push",
                    "signatures": [sig.to_json() for sig in spilled],
                }
            )
        self._spill_path.unlink()
        self.spill_replayed += len(spilled)
        return len(spilled)

    # ------------------------------------------------------------------
    # durability hooks
    # ------------------------------------------------------------------

    def _replay(self) -> None:
        """Open-time sync: replay any spill journal, pull the pool.

        An unreachable server leaves the store empty but *usable* — the
        engine records locally, flushes spill to disk, and the sync pump
        heals the partition later.
        """
        try:
            self._replay_spill()
            self._pull_and_index()
        except FleetUnreachableError:
            pass  # degraded open: counted in self.failures already

    def _pull_and_index(self) -> int:
        reply = self._request(
            {
                "op": "pull",
                "after": self._synced_rev,
                "gen": self._generation,
            }
        )
        added = 0
        for payload in reply.get("signatures", ()):
            signature = DeadlockSignature.from_json(payload)
            if self._index(signature):
                added += 1
        self._synced_rev = reply.get("rev", self._synced_rev)
        self._generation = reply.get("gen", self._generation)
        self.pulled += added
        return added

    def _persist(self, batch: tuple[DeadlockSignature, ...]) -> None:
        """Push the batch; degrade to the spill journal if the server
        is away. Either way the batch is durable when this returns."""
        try:
            self._replay_spill()
            reply = self._request(
                {
                    "op": "push",
                    "signatures": [sig.to_json() for sig in batch],
                }
            )
        except FleetUnreachableError:
            self._spill(batch)
            return
        self.pushed += len(batch)
        self._synced_rev = max(self._synced_rev, reply.get("rev", 0))
        self._generation = reply.get("gen", self._generation)

    def _remove_backend(self, batch) -> None:
        # Best-effort: the server expires the same predictions on its
        # own clients' schedules; a miss costs redundancy, not safety.
        try:
            self._request(
                {
                    "op": "discard",
                    "keys": [canonical_text(sig) for sig in batch],
                }
            )
        except FleetUnreachableError:
            pass

    def _purge_backend(self) -> None:
        # Purge is destructive and the caller asked for it explicitly —
        # failing loudly beats pretending the fleet pool was emptied.
        reply = self._request({"op": "purge"})
        self._synced_rev = 0
        self._generation = reply.get("gen", self._generation)

    # ------------------------------------------------------------------
    # sync surface (what the pump drives)
    # ------------------------------------------------------------------

    def refresh(self) -> int:
        """Pull signatures the fleet learned since our last sync.

        Also replays any spill journal first (reconnection is exactly
        when spilled antibodies can finally travel). Returns how many
        new signatures were indexed; raises
        :class:`FleetUnreachableError` when the server is away.
        """
        with self._lock:
            self._replay_spill()
            return self._pull_and_index()

    def server_stats(self) -> dict:
        """The server's ``stats`` reply (counts, revision, provenance)."""
        return self._request({"op": "stats"})

    def push_metrics(self, report: dict) -> dict:
        """Upload this client's telemetry report (the ``metrics`` op).

        The sync pump calls this each cycle when the owning engine has
        telemetry on; the server aggregates reports across clients and
        answers fleet-wide percentiles to anyone who asks. Raises
        :class:`FleetUnreachableError` when the server is away (the
        pump swallows it — metrics are best-effort).
        """
        with self._lock:
            return self._request({"op": "metrics", "report": report})

    def metrics(self) -> dict:
        """The server's aggregated fleet-wide ``metrics`` reply."""
        with self._lock:
            return self._request({"op": "metrics"})

    def close(self) -> None:
        if self._closed:
            return
        try:
            super().close()  # flush: pushes or spills the pending batch
        finally:
            self._drop_connection()

    def __repr__(self) -> str:
        state = "connected" if self.connected else "disconnected"
        return (
            f"<RemoteStore {self.url} ({state}): {len(self)} "
            f"signature(s), {self.pending_count} pending, "
            f"{self.spilled} spilled>"
        )


__all__ = [
    "RemoteStore",
    "FleetError",
    "FleetUnreachableError",
    "SPILL_DIR_ENV",
]
