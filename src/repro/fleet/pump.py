"""The antibody sync pump — background refresh for long-lived processes.

A shared pool (``sqlite://``, ``shard://``, ``tcp://``) makes antibodies
*available* fleet-wide, but a process only consults its in-memory index:
without a refresh, immunity earned elsewhere arrives at the next
restart. The paper's phones rebooted after every deadlock; a platform
service that never restarts needs the pull driven for it.

:class:`SyncPump` is that driver — a daemon thread, deliberately shaped
like the :class:`~repro.core.store.persister.WriteBehindPersister` it
rides alongside:

* it wakes on ``history-saved`` events (a flush just happened, so the
  fleet may have news for us too — and for ``tcp://``, our push may
  have been spilled and wants replaying),
* and on a configurable period (``DimmunixConfig.fleet_sync_interval``),
  so a quiet process still converges on the fleet's pool.

Each cycle calls the store's ``refresh()`` (every shared backend has
one) and folds the store's own transport counters into deltas; a cycle
with anything to report publishes one
:class:`~repro.core.events.FleetSyncEvent` under the owning engine's
source, which is how the counters reach ``DimmunixStats``
(``sync_pulls`` / ``sync_pushed`` / ``sync_failures`` /
``spill_replayed``). All-quiet cycles publish nothing.

Failures never propagate: an unreachable server is a counted event,
retried next cycle — the pump must be as unkillable as the persister.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.core.events import FleetSyncEvent

# Original primitives, captured before any platform-wide patch: the
# pump must never block on an immunized lock.
_Condition = threading.Condition
_Lock = threading.Lock
_Thread = threading.Thread

#: counters a fleet-aware store (RemoteStore) exposes; deltas of these
#: ride along in the FleetSyncEvent.
_STORE_COUNTERS = ("pushed", "failures", "spill_replayed")


class SyncPump:
    """Keeps one history's in-memory index current with the fleet."""

    def __init__(
        self,
        history,
        events,
        *,
        interval: Optional[float] = None,
        source: str = "core",
        telemetry=None,
        health_provider=None,
    ) -> None:
        self.history = history
        self.events = events
        self.interval = interval
        self.source = source
        # Zero-arg callable returning the owning core's liveness-health
        # dict (the LivenessWatchdog's health()); rides along in the
        # metrics report so `dimmunix-serve` can aggregate fleet-wide
        # oldest-waiter ages and suspect counts.
        self.health_provider = health_provider
        # When the owning engine has telemetry on, each cycle is timed
        # into the ``sync`` phase histogram and the collector's full
        # report is pushed to the fleet server (if the store can carry
        # it), which is how `dimmunix-serve` answers fleet-wide
        # percentiles.
        self.telemetry = telemetry
        self.last_sync_ns: Optional[int] = None
        self.metrics_pushed = 0
        # Cumulative pump-side telemetry (mirrored into stats via the
        # published events).
        self.cycles = 0
        self.pulls = 0
        self.pushes = 0
        self.failures = 0
        self.spill_replays = 0
        self._cond = _Condition(_Lock())
        self._kicks = 0
        self._closed = False
        self._last_counters = self._counter_snapshot()
        # Eager start for the same reason the persister's worker starts
        # eagerly: Thread.start() inside bus dispatch would run under
        # the engine's global lock.
        self._worker = _Thread(
            target=self._run, name="dimmunix-sync-pump", daemon=True
        )
        self._worker.start()
        self._subscription = events.subscribe(
            self._on_saved, kinds=("history-saved",)
        )

    # ------------------------------------------------------------------
    # bus side (runs inside dispatch — flag and notify only)
    # ------------------------------------------------------------------

    def _on_saved(self, event) -> None:
        with self._cond:
            if self._closed:
                return
            self._kicks += 1
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                if not self._kicks and not self._closed:
                    self._cond.wait(timeout=self.interval)
                if self._closed:
                    return
                trigger = "saved" if self._kicks else "period"
                self._kicks = 0
            self._sync(trigger)

    def _counter_snapshot(self) -> dict[str, int]:
        store = self.history.store
        return {
            name: getattr(store, name, 0) for name in _STORE_COUNTERS
        }

    def _sync(self, trigger: str) -> None:
        store = self.history.store
        refresh = getattr(store, "refresh", None)
        if refresh is None:
            return  # mem:// / jsonl://: nothing to sync against
        telemetry = self.telemetry
        start_ns = time.monotonic_ns() if telemetry is not None else 0
        pulled = 0
        local_failures = 0
        try:
            pulled = refresh()
            self.last_sync_ns = time.monotonic_ns()
            if pulled:
                # refresh() mutates the store's index beneath the
                # History facade, so the fast-path invalidation epoch
                # must be bumped here — this is what demotes a
                # fast-pathed position on the very next acquire after
                # a sibling's antibody arrives.
                self.history.bump_index_epoch()
        except Exception:
            # RemoteStore counts its own transport failures; anything
            # else (or anything beyond them) is counted here. Either
            # way the pump survives and retries next cycle.
            local_failures = 1
        if telemetry is not None:
            telemetry.record("sync", time.monotonic_ns() - start_ns)
            self._push_metrics(store)
        current = self._counter_snapshot()
        previous, self._last_counters = self._last_counters, current
        pushed = max(0, current["pushed"] - previous["pushed"])
        spill_replayed = max(
            0, current["spill_replayed"] - previous["spill_replayed"]
        )
        failures = max(
            local_failures, current["failures"] - previous["failures"]
        )
        self.cycles += 1
        self.pulls += pulled
        self.pushes += pushed
        self.failures += failures
        self.spill_replays += spill_replayed
        if not (pulled or pushed or failures or spill_replayed):
            return  # a healthy idle fleet stays off the event stream
        self.events.publish(
            FleetSyncEvent(
                source=self.source,
                ts=time.time(),
                ts_ns=time.monotonic_ns(),
                pulled=pulled,
                pushed=pushed,
                failures=failures,
                spill_replayed=spill_replayed,
                trigger=trigger,
            )
        )

    # ------------------------------------------------------------------
    # fleet metrics
    # ------------------------------------------------------------------

    def metrics_report(self) -> dict:
        """This client's contribution to the fleet ``metrics`` op.

        Phase histograms in wire form, the local spill depth (journal
        entries not yet replayed to the server), how long ago the last
        successful sync completed, and — when the owning core runs a
        liveness watchdog — its health dict (oldest waiter age,
        suspect/mitigation counts).
        """
        store = self.history.store
        spilled = getattr(store, "spilled", 0)
        replayed = getattr(store, "spill_replayed", 0)
        report: dict = {
            "client": self.source,
            "phases": (
                self.telemetry.snapshot_json()
                if self.telemetry is not None
                else {}
            ),
            "spill_depth": max(0, spilled - replayed),
        }
        if self.last_sync_ns is not None:
            report["sync_lag_s"] = max(
                0.0, (time.monotonic_ns() - self.last_sync_ns) / 1e9
            )
        if self.health_provider is not None:
            try:
                health = self.health_provider()
            except Exception:
                health = None
            if health:
                report["health"] = health
        return report

    def _push_metrics(self, store) -> None:
        push = getattr(store, "push_metrics", None)
        if push is None:
            return  # sqlite:// / shard://: no server to report to
        try:
            push(self.metrics_report())
            self.metrics_pushed += 1
        except Exception:
            # Metrics are strictly best-effort: an unreachable server
            # already shows up in the sync failure counters.
            pass

    # ------------------------------------------------------------------
    # explicit control
    # ------------------------------------------------------------------

    def sync_now(self, trigger: str = "manual") -> int:
        """Run one cycle synchronously; returns signatures pulled.

        The ``Dimmunix.sync()`` front door and the test hook — no
        waiting on the worker's schedule.
        """
        before = self.pulls
        self._sync(trigger)
        return self.pulls - before

    def kick(self) -> None:
        """Ask the worker for a cycle soon (without blocking for it)."""
        with self._cond:
            if not self._closed:
                self._kicks += 1
                self._cond.notify_all()

    def close(self) -> None:
        """Stop the worker and drop the subscription. Safe to repeat."""
        with self._cond:
            already = self._closed
            self._closed = True
            self._cond.notify_all()
        if self._worker.is_alive():
            self._worker.join(timeout=5.0)
        if not already:
            self.events.unsubscribe(self._subscription)

    def __repr__(self) -> str:
        period = (
            f"every {self.interval}s" if self.interval else "event-driven"
        )
        return (
            f"<SyncPump {period} on {self.history.store.url}: "
            f"{self.cycles} cycle(s), {self.pulls} pulled, "
            f"{self.pushes} pushed, {self.failures} failure(s)>"
        )


__all__ = ["SyncPump"]
