"""The fleet wire protocol — length-prefixed JSON frames.

Antibody propagation is a communication problem, so the protocol is
specified like one. A *frame* is::

    +----------------+----------------------------+
    | length: u32 BE | body: UTF-8 JSON object    |
    +----------------+----------------------------+

The 4-byte big-endian length counts the body bytes only and is capped
(:data:`DEFAULT_MAX_FRAME`) so a corrupt or hostile peer cannot make
either side allocate unboundedly. Every request body carries an ``op``;
every response carries ``ok`` (and ``error`` when ``ok`` is false).

Operations (client → server):

``hello``
    ``{"op": "hello", "format": "dimmunix-history", "version": 1}`` →
    ``{"ok": true, "rev": N, "signatures": N, "url": "<backend dsn>"}``.
    The format/version handshake: a server fronting an incompatible
    store format refuses here, not mid-sync.
``push``
    ``{"op": "push", "signatures": [<signature json>, ...]}`` →
    ``{"ok": true, "added": K, "rev": N}``. Idempotent: duplicates
    deduplicate against the backend's canonical keys (provenance
    upgrades merge, exactly like a local duplicate ``add``). A merge
    that upgraded a stored signature mutates rows without moving the
    revision, so it bumps the generation — already-synced clients
    full-resync and apply the same upgrade locally.
``pull``
    ``{"op": "pull", "after": R, "gen": G}`` →
    ``{"ok": true, "signatures": [...], "rev": N, "gen": G'}``.
    Incremental sync: the server's *revision* is its backend's
    insertion count, so ``after=R`` returns only signatures the client
    has not seen. Removals renumber that log, so they bump the server's
    *generation*; a pull carrying a stale ``gen`` (or an ``after``
    beyond the server's rev) gets a full resync instead of a silently
    misaligned suffix.
``discard``
    ``{"op": "discard", "keys": [<canonical text>, ...]}`` →
    ``{"ok": true, "removed": K, "rev": N}``. The prediction-expiry
    path; best-effort by design (an unreachable server just expires the
    same predictions on its own clients' schedules).
``purge``
    ``{"op": "purge"}`` → ``{"ok": true, "removed": K}``.
``stats``
    ``{"op": "stats"}`` → counts by kind and provenance.
``metrics``
    ``{"op": "metrics", "report": {...}}`` (report optional) →
    ``{"ok": true, "clients": N, "phases": {...}, "spill_depth": D,
    "sync_lag_max_s": S, "rev": R, "gen": G}``. With a ``report`` —
    ``{"client": <id>, "phases": {<phase>: <histogram json>},
    "spill_depth": D, "sync_lag_s": S}`` — the server stores it as the
    client's latest (the sync pump pushes one per cycle when telemetry
    is on). Either way the reply aggregates every client's latest
    report: per-phase log2 histograms merged fleet-wide with true
    p50/p99 (not averaged percentiles), summed spill depth, and the
    worst sync lag. The op needs no ``hello`` — a bare socket query
    (``dimmunix-report metrics tcp://...``) works.

Both a blocking (socket) and an asyncio (stream) codec are provided:
the server is an asyncio service, while the client runs on the
write-behind persister's worker thread and wants plain blocking I/O
with explicit timeouts.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional

from repro.errors import DimmunixError

PROTOCOL_VERSION = 1

#: refuse frames larger than this (32 MiB ≫ any real antibody batch)
DEFAULT_MAX_FRAME = 32 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class FleetProtocolError(DimmunixError):
    """A malformed, oversized, or truncated protocol frame."""


def encode_frame(payload: dict) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > DEFAULT_MAX_FRAME:
        raise FleetProtocolError(
            f"frame of {len(body)} bytes exceeds the "
            f"{DEFAULT_MAX_FRAME}-byte cap"
        )
    return _LENGTH.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FleetProtocolError("frame body is not valid JSON") from exc
    if not isinstance(payload, dict):
        raise FleetProtocolError("frame body must be a JSON object")
    return payload


# ----------------------------------------------------------------------
# blocking codec (the client side)
# ----------------------------------------------------------------------

def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise FleetProtocolError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def write_frame(sock: socket.socket, payload: dict) -> None:
    sock.sendall(encode_frame(payload))


def read_frame(
    sock: socket.socket, max_frame: int = DEFAULT_MAX_FRAME
) -> dict:
    (length,) = _LENGTH.unpack(_recv_exactly(sock, _LENGTH.size))
    if length > max_frame:
        raise FleetProtocolError(
            f"peer announced a {length}-byte frame (cap {max_frame})"
        )
    return decode_body(_recv_exactly(sock, length))


# ----------------------------------------------------------------------
# asyncio codec (the server side)
# ----------------------------------------------------------------------

async def write_frame_async(writer, payload: dict) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()


async def read_frame_async(
    reader, max_frame: int = DEFAULT_MAX_FRAME
) -> Optional[dict]:
    """Read one frame; ``None`` on a clean EOF between frames."""
    import asyncio

    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise FleetProtocolError("connection closed mid-header") from exc
    (length,) = _LENGTH.unpack(header)
    if length > max_frame:
        raise FleetProtocolError(
            f"peer announced a {length}-byte frame (cap {max_frame})"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FleetProtocolError("connection closed mid-frame") from exc
    return decode_body(body)


__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME",
    "FleetProtocolError",
    "encode_frame",
    "decode_body",
    "read_frame",
    "write_frame",
    "read_frame_async",
    "write_frame_async",
]
