"""``shard://`` — the canonical-key-sharded sqlite store.

One ``sqlite://`` pool serves a handful of processes fine, but a busy
platform has *every* process flushing antibodies into the same file,
and SQLite serializes writers per database: at fleet scale the write
lock becomes the contention point the paper's lock-free hot path worked
so hard to avoid. ``shard://`` keeps the same durability story while
splitting the write lock N ways: the backing "file" is a *directory* of
N independent WAL-mode sqlite shards, and each signature lives in the
shard its canonical key hashes to — so two processes recording
different deadlocks almost never touch the same file.

Layout::

    <dir>/
      fleet-meta.json      {"format": ..., "version": 1, "shards": N}
      shard-00.db          ordinary SqliteStore databases
      shard-01.db
      ...

The shard count is fixed at creation (it is the hash modulus — changing
it would strand rows in the wrong shard) and recorded in
``fleet-meta.json``; reopening needs no ``?shards=`` parameter, and an
explicit parameter that disagrees with the directory is a loud error.
``dimmunix-history migrate shard://old shard://new?shards=M`` is the
resharding path.

The hash is :func:`zlib.crc32` over the canonical-key JSON — stable
across processes and Python versions (unlike ``hash()``), so every
process in the fleet agrees on shard placement.

The in-memory matching index lives in this store (inherited from
:class:`~repro.core.store.base.HistoryStore`) and is shared *by object*
with the child shards: replay and refresh index the very signature
objects the shards hold, so a provenance upgrade merged at either level
is visible at both.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from pathlib import Path
from typing import Optional

from repro.core.signature import DeadlockSignature
from repro.core.store.base import HistoryStore
from repro.core.store.jsonl import FORMAT_NAME, FORMAT_VERSION
from repro.core.store.sqlite import (
    DURABILITY_NORMAL,
    SqliteStore,
    canonical_text,
)
from repro.core.store.url import SCHEME_SHARD
from repro.errors import HistoryFormatError

DEFAULT_SHARDS = 8

_META_NAME = "fleet-meta.json"


def shard_index(signature: DeadlockSignature, shards: int) -> int:
    """The shard a signature lives in — stable across the whole fleet."""
    return zlib.crc32(canonical_text(signature).encode("utf-8")) % shards


class ShardedStore(HistoryStore):
    """N sqlite shards behind one ``HistoryStore`` surface."""

    scheme = SCHEME_SHARD
    persistent = True

    def __init__(
        self,
        path: Path | str,
        max_signatures: int = 4096,
        *,
        shards: Optional[int] = None,
        durability: str = DURABILITY_NORMAL,
    ) -> None:
        super().__init__(max_signatures=max_signatures)
        self._path = Path(path)
        self._durability = durability
        self._shard_count = self._resolve_shard_count(shards)
        # Children enforce the same capacity: in the worst case every
        # signature hashes to one shard, and the parent's own index is
        # the real gate anyway.
        self._shards = [
            SqliteStore(
                self._path / f"shard-{index:02d}.db",
                max_signatures=max_signatures,
                durability=durability,
            )
            for index in range(self._shard_count)
        ]
        self._replay()

    # ------------------------------------------------------------------
    # open-time plumbing
    # ------------------------------------------------------------------

    def _resolve_shard_count(self, requested: Optional[int]) -> int:
        """Fix the shard count: directory meta wins, then the DSN, then
        the default. A DSN that disagrees with an existing directory is
        an error — silently rehashing would make every lookup miss."""
        meta_path = self._path / _META_NAME
        if meta_path.exists():
            try:
                meta = self._read_meta(meta_path)
                existing = int(meta["shards"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise HistoryFormatError(
                    f"corrupt shard metadata in {meta_path}"
                ) from exc
            if meta.get("format") != FORMAT_NAME:
                raise HistoryFormatError(
                    f"{self._path} is not a Dimmunix shard directory "
                    f"(format={meta.get('format')!r})"
                )
            if requested is not None and requested != existing:
                raise HistoryFormatError(
                    f"{self._path} holds {existing} shard(s); reshaping to "
                    f"{requested} needs a migrate, not a DSN parameter"
                )
            return existing
        if self._path.exists() and not self._path.is_dir():
            raise HistoryFormatError(
                f"shard:// needs a directory, and {self._path} is a file"
            )
        count = requested if requested is not None else DEFAULT_SHARDS
        self._path.mkdir(parents=True, exist_ok=True)
        # Atomic publish: a sibling process opening the pool mid-create
        # must see either no meta (and write its own, identically) or a
        # complete one — never a torn read.
        scratch = meta_path.with_name(f"{_META_NAME}.{os.getpid()}.tmp")
        scratch.write_text(
            json.dumps(
                {
                    "format": FORMAT_NAME,
                    "version": FORMAT_VERSION,
                    "shards": count,
                }
            )
            + "\n",
            encoding="utf-8",
        )
        os.replace(scratch, meta_path)
        return count

    @staticmethod
    def _read_meta(meta_path: Path) -> dict:
        # Pools created before the atomic-publish fix could leave a
        # briefly-empty meta visible to a racing opener; give the
        # writer a moment before declaring corruption.
        for _attempt in range(3):
            text = meta_path.read_text(encoding="utf-8")
            if text.strip():
                return json.loads(text)
            time.sleep(0.01)
        return json.loads(text)

    def _replay(self) -> None:
        # The children replayed their databases in their constructors;
        # adopt their signature objects (not copies) into the parent
        # index so provenance merges stay coherent.
        for child in self._shards:
            for signature in child:
                self._index(signature)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    @property
    def location(self) -> Optional[Path]:
        return self._path

    @property
    def durability(self) -> str:
        return self._durability

    @property
    def url(self) -> str:
        base = super().url
        if self._durability != DURABILITY_NORMAL:
            return f"{base}?durability={self._durability}"
        return base

    @property
    def shard_count(self) -> int:
        return self._shard_count

    @property
    def shard_paths(self) -> tuple[Path, ...]:
        return tuple(child.location for child in self._shards)

    def _child_for(self, signature: DeadlockSignature) -> SqliteStore:
        return self._shards[shard_index(signature, self._shard_count)]

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------

    def _persist(self, batch: tuple[DeadlockSignature, ...]) -> None:
        touched: set[int] = set()
        for signature in batch:
            index = shard_index(signature, self._shard_count)
            child = self._shards[index]
            if not child.add(signature):
                # Already stored there — and very often it is the *same
                # object* we hold, so the duplicate-merge path sees no
                # provenance delta. Pend the stored row explicitly so
                # upgrades (promotion, age bumps) reach the shard file.
                child.mark_dirty(signature)
            touched.add(index)
        for index in touched:
            self._shards[index].flush()

    def _remove_backend(self, batch) -> None:
        by_shard: dict[int, list[DeadlockSignature]] = {}
        for signature in batch:
            by_shard.setdefault(
                shard_index(signature, self._shard_count), []
            ).append(signature)
        for index, shard_batch in by_shard.items():
            self._shards[index].discard(shard_batch)

    def _purge_backend(self) -> None:
        for child in self._shards:
            child.purge()

    def refresh(self) -> int:
        """Pull in signatures committed by sibling processes.

        Fans across every shard; returns how many new signatures were
        indexed here. Provenance upgrades a sibling committed merge into
        the shared objects as a side effect, exactly like
        :meth:`~repro.core.store.sqlite.SqliteStore.refresh`.
        """
        with self._lock:
            added = 0
            for child in self._shards:
                child.refresh()
                for signature in child:
                    if self._index(signature):
                        added += 1
            return added

    def snapshot_to(self, path) -> None:
        """Snapshot to a file; to our own directory, flush instead.

        The base implementation writes a legacy flat file — replacing
        the shard *directory* with one is never right.
        """
        if Path(path) == self._path:
            self.flush()
            return
        super().snapshot_to(path)

    def close(self) -> None:
        if self._closed:
            return
        super().close()
        for child in self._shards:
            child.close()

    def __repr__(self) -> str:
        return (
            f"<ShardedStore {self.url} ({self._shard_count} shards): "
            f"{len(self)} signature(s), {self.pending_count} pending>"
        )


__all__ = ["ShardedStore", "shard_index", "DEFAULT_SHARDS"]
