"""The fleet-scale immunity service — distribution for the antibody pool.

The paper's endgame is *platform-wide herd immunity*: one process's
deadlock becomes every process's avoidance. The core already has the
plumbing (a pluggable :class:`~repro.core.store.HistoryStore` contract,
a write-behind persister, ``history-saved`` events); this package is the
distribution layer that turns a per-process history into a fleet-wide
one:

* :class:`~repro.fleet.shard.ShardedStore` (``shard://``) hashes the
  canonical signature key across N sqlite shard files so many writer
  processes stop contending on one database's write lock;
* :class:`~repro.fleet.server.FleetServer` / ``dimmunix-serve`` and
  :class:`~repro.fleet.remote.RemoteStore` (``tcp://``) put the same
  store contract behind a length-prefixed-JSON network protocol, with
  batched uploads, bounded retry/backoff, and a local spill journal so
  an unreachable server never loses an antibody;
* :class:`~repro.fleet.pump.SyncPump` keeps long-lived processes
  current: a background refresh driven by ``history-saved`` events and
  a configurable period, surfaced as
  :class:`~repro.core.events.FleetSyncEvent` telemetry.

Antibody propagation is treated as a *communication problem* with
explicit timeout/retry semantics (the MPI synchronization-deadlock
literature's framing), not a best-effort side channel: every failure is
counted (``stats.sync_failures``), every degradation has a recovery
path (the spill journal replays on reconnect).
"""

from __future__ import annotations

from repro.fleet.protocol import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    FleetProtocolError,
    read_frame,
    write_frame,
)
from repro.fleet.pump import SyncPump
from repro.fleet.remote import FleetUnreachableError, RemoteStore
from repro.fleet.server import FleetServer
from repro.fleet.shard import DEFAULT_SHARDS, ShardedStore

__all__ = [
    "ShardedStore",
    "DEFAULT_SHARDS",
    "RemoteStore",
    "FleetUnreachableError",
    "FleetServer",
    "SyncPump",
    "FleetProtocolError",
    "read_frame",
    "write_frame",
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME",
]
