"""``dimmunix-serve`` — the fleet history service.

One process's deadlock becomes every process's avoidance only if the
antibody travels. :class:`FleetServer` fronts *any* history backend
(``open_store`` DSN — usually ``shard://`` or ``sqlite://``) with the
length-prefixed-JSON protocol from :mod:`repro.fleet.protocol`, so a
whole fleet of :class:`~repro.fleet.remote.RemoteStore` clients shares
one authoritative pool.

Synchronization model:

* The server is an asyncio service, but every operation resolves to a
  plain synchronous call on the backend store — whose own lock is the
  serialization point. Handlers never block on the network while holding
  store state.
* The *revision* a client syncs against is simply the backend's
  insertion count: rev ``N`` means "the first ``N`` signatures in
  insertion order". ``pull {after: R}`` therefore ships exactly the
  suffix the client has not seen, and the signatures are re-serialized
  from the live objects at pull time so a provenance upgrade merged
  after the original insertion is never served stale.
* Removals (``discard``, ``purge``) renumber the suffix, so they bump a
  *generation* counter; a pull carrying a stale generation gets a full
  resync instead of a silently misaligned suffix.

Pushes are flushed to the backend before the response is sent: once a
client sees ``{"ok": true}``, its antibodies are durable on the server
even if the server dies next.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.core.signature import DeadlockSignature
from repro.core.store.base import HistoryFullError, HistoryStore
from repro.core.store.jsonl import FORMAT_NAME
from repro.core.store.sqlite import canonical_text
from repro.core.store.url import DEFAULT_FLEET_PORT
from repro.fleet.protocol import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    FleetProtocolError,
    read_frame_async,
    write_frame_async,
)


class FleetServer:
    """Serve one ``HistoryStore`` to many ``tcp://`` clients."""

    def __init__(
        self,
        store: HistoryStore,
        host: str = "127.0.0.1",
        port: int = DEFAULT_FLEET_PORT,
        *,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        self._store = store
        self._host = host
        self._port = port
        self._max_frame = max_frame
        # Bumped whenever signatures are *removed* — removal renumbers
        # the insertion suffix, so clients must full-resync.
        self._generation = 0
        # Latest telemetry report per client (the ``metrics`` op):
        # keyed by the client-chosen id, aggregated at query time so a
        # restarting client simply overwrites its own slot.
        self._metrics_reports: dict[str, dict] = {}
        self.requests_handled = 0
        self.connections = 0
        self._conn_tasks: set = set()
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The bound port (meaningful after the server started)."""
        return self._port

    @property
    def address(self) -> str:
        return f"tcp://{self._host}:{self._port}"

    @property
    def store(self) -> HistoryStore:
        return self._store

    # ------------------------------------------------------------------
    # request dispatch (synchronous — the store lock serializes)
    # ------------------------------------------------------------------

    def _revision(self) -> dict:
        return {"rev": len(self._store), "gen": self._generation}

    def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "hello":
            fmt = request.get("format")
            version = request.get("version")
            if fmt != FORMAT_NAME or version != PROTOCOL_VERSION:
                return {
                    "ok": False,
                    "error": (
                        f"incompatible client (format={fmt!r}, "
                        f"version={version!r}); this server speaks "
                        f"{FORMAT_NAME} v{PROTOCOL_VERSION}"
                    ),
                }
            return {
                "ok": True,
                "url": self._store.url,
                "signatures": len(self._store),
                **self._revision(),
            }
        if op == "push":
            payloads = request.get("signatures")
            if not isinstance(payloads, list):
                return {"ok": False, "error": "push needs a signature list"}
            try:
                batch = [
                    DeadlockSignature.from_json(payload)
                    for payload in payloads
                ]
            except (KeyError, TypeError, ValueError) as exc:
                return {"ok": False, "error": f"bad signature: {exc}"}
            pending_before = self._store.pending_count
            try:
                added = sum(1 for sig in batch if self._store.add(sig))
            except HistoryFullError as exc:
                return {"ok": False, "error": str(exc)}
            # A duplicate push can still carry news — a provenance
            # upgrade merged into a stored signature. That mutates rows
            # without moving the revision, so already-synced clients
            # would never see it; bump the generation to force their
            # next pull into a full resync (their local dup-merge then
            # applies the same upgrade).
            upgraded = (
                self._store.pending_count - pending_before - added
            )
            if upgraded > 0:
                self._generation += 1
            # Durable before the client hears "ok": a crash after the
            # response must not lose an acknowledged antibody.
            self._store.flush()
            return {"ok": True, "added": added, **self._revision()}
        if op == "pull":
            after = request.get("after", 0)
            generation = request.get("gen", self._generation)
            if not isinstance(after, int) or after < 0:
                return {"ok": False, "error": "pull needs a non-negative 'after'"}
            signatures = list(self._store)
            if generation != self._generation or after > len(signatures):
                after = 0  # removal renumbered the log: full resync
            return {
                "ok": True,
                "signatures": [sig.to_json() for sig in signatures[after:]],
                **self._revision(),
            }
        if op == "discard":
            keys = request.get("keys")
            if not isinstance(keys, list):
                return {"ok": False, "error": "discard needs a key list"}
            wanted = set(keys)
            batch = [
                sig
                for sig in self._store
                if canonical_text(sig) in wanted
            ]
            removed = self._store.discard(batch) if batch else 0
            if removed:
                self._generation += 1
            return {"ok": True, "removed": removed, **self._revision()}
        if op == "purge":
            removed = self._store.purge()
            if removed:
                self._generation += 1
            return {"ok": True, "removed": removed, **self._revision()}
        if op == "stats":
            return {
                "ok": True,
                "url": self._store.url,
                "signatures": len(self._store),
                "deadlocks": self._store.deadlock_count(),
                "starvations": self._store.starvation_count(),
                "provenance": self._store.provenance_counts(),
                "connections": self.connections,
                "requests": self.requests_handled,
                **self._revision(),
            }
        if op == "metrics":
            report = request.get("report")
            if report is not None:
                if not isinstance(report, dict) or not report.get("client"):
                    return {
                        "ok": False,
                        "error": "metrics report needs a 'client' id",
                    }
                self._metrics_reports[str(report["client"])] = report
            return {"ok": True, **self._aggregate_metrics()}
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _aggregate_metrics(self) -> dict:
        """Fold every client's latest report into fleet-wide numbers.

        Phase histograms merge losslessly (log2 buckets are
        client-independent), so the p50/p99 here are true fleet-wide
        percentiles, not averages of percentiles.
        """
        from repro.telemetry.histogram import LogHistogram

        merged: dict[str, LogHistogram] = {}
        spill_depth = 0
        sync_lag_max = 0.0
        # Fleet liveness health, folded from the per-client watchdog
        # health dicts that ride in the metrics reports: counts sum,
        # the oldest waiter age is a fleet-wide max.
        health = {
            "clients": 0,
            "suspected_now": 0,
            "livelock_suspects": 0,
            "watchdog_mitigations": 0,
            "oldest_waiter_age_ns": 0,
        }
        for report in self._metrics_reports.values():
            for phase, data in (report.get("phases") or {}).items():
                try:
                    histogram = LogHistogram.from_json(data)
                except (TypeError, ValueError):
                    continue  # one malformed client must not poison all
                target = merged.get(phase)
                if target is None:
                    merged[phase] = histogram
                else:
                    target.merge(histogram)
            spill_depth += int(report.get("spill_depth") or 0)
            lag = report.get("sync_lag_s")
            if isinstance(lag, (int, float)):
                sync_lag_max = max(sync_lag_max, float(lag))
            client_health = report.get("health")
            if isinstance(client_health, dict):
                health["clients"] += 1
                for key in (
                    "suspected_now",
                    "livelock_suspects",
                    "watchdog_mitigations",
                ):
                    try:
                        health[key] += int(client_health.get(key) or 0)
                    except (TypeError, ValueError):
                        pass
                age = client_health.get("oldest_waiter_age_ns")
                if isinstance(age, (int, float)):
                    health["oldest_waiter_age_ns"] = max(
                        health["oldest_waiter_age_ns"], int(age)
                    )
        return {
            "health": health,
            "clients": len(self._metrics_reports),
            "phases": {
                phase: {
                    "count": histogram.count,
                    "sum_ns": histogram.sum_ns,
                    "p50_ns": histogram.percentile(0.5),
                    "p99_ns": histogram.percentile(0.99),
                    "histogram": histogram.to_json(),
                }
                for phase, histogram in sorted(merged.items())
            },
            "spill_depth": spill_depth,
            "sync_lag_max_s": sync_lag_max,
            **self._revision(),
        }

    # ------------------------------------------------------------------
    # asyncio service
    # ------------------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        # Track the handler task so shutdown can cancel live
        # conversations instead of stranding them on a closed loop.
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._converse(reader, writer)
        except asyncio.CancelledError:
            # Shutdown cancelled the conversation. Returning (instead
            # of propagating) keeps the streams protocol's
            # done-callback from re-raising into the loop's exception
            # handler; the writer was already closed on the way out.
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)

    async def _converse(self, reader, writer) -> None:
        self.connections += 1
        try:
            while True:
                try:
                    request = await read_frame_async(
                        reader, max_frame=self._max_frame
                    )
                except FleetProtocolError as exc:
                    # A malformed frame poisons the stream — report and
                    # hang up rather than guess at resynchronization.
                    try:
                        await write_frame_async(
                            writer, {"ok": False, "error": str(exc)}
                        )
                    except (ConnectionError, OSError):
                        pass
                    return
                if request is None:
                    return  # clean close
                self.requests_handled += 1
                try:
                    response = self._dispatch(request)
                except Exception as exc:  # defensive: never kill the server
                    response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
                await write_frame_async(writer, response)
        except (ConnectionError, OSError):
            pass  # client vanished mid-conversation
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def serve(self) -> None:
        """Run until cancelled (the ``dimmunix-serve`` foreground path)."""
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(
            self._handle, self._host, self._port
        )
        self._port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            async with server:
                await self._stop_event.wait()
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(
                    *self._conn_tasks, return_exceptions=True
                )
        finally:
            self._store.flush()

    # ------------------------------------------------------------------
    # background-thread lifecycle (tests, embedded servers)
    # ------------------------------------------------------------------

    def start_background(self) -> tuple[str, int]:
        """Run the server on a daemon thread; returns ``(host, port)``.

        Pass ``port=0`` to bind an ephemeral port — the bound port is
        returned (and available as :attr:`port`).
        """
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="dimmunix-fleet-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("fleet server failed to start within 10s")
        if self._startup_error is not None:
            raise RuntimeError(
                "fleet server failed to start"
            ) from self._startup_error
        return (self._host, self._port)

    def _run_loop(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.serve())
        except BaseException as exc:  # surface bind failures to the caller
            self._startup_error = exc
            self._ready.set()
        finally:
            self._loop.close()

    def stop(self) -> None:
        """Stop the background server and flush the backend."""
        loop, thread = self._loop, self._thread
        if (
            loop is not None
            and thread is not None
            and thread.is_alive()
            and self._stop_event is not None
        ):
            loop.call_soon_threadsafe(self._stop_event.set)
            thread.join(timeout=10)
        self._store.flush()

    def __enter__(self) -> "FleetServer":
        self.start_background()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        return (
            f"<FleetServer {self.address} -> {self._store.url}: "
            f"{len(self._store)} signature(s)>"
        )


__all__ = ["FleetServer"]
