"""Profiling, window selection, table rendering, experiment records."""

from repro.analysis.profiler import SyncProfiler
from repro.analysis.report import ExperimentRecord, emit, within_factor
from repro.analysis.tables import format_mb, format_pct, render_table
from repro.analysis.windows import Window, peak_window

__all__ = [
    "SyncProfiler",
    "Window",
    "peak_window",
    "render_table",
    "format_mb",
    "format_pct",
    "ExperimentRecord",
    "emit",
    "within_factor",
]
