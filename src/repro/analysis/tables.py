"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows the paper's tables report;
this keeps the formatting in one place so every bench looks the same.
"""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table (left-aligned first column)."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if index == 0:
                parts.append(cell.ljust(widths[index]))
            else:
                parts.append(cell.rjust(widths[index]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(format_row(row))
    return "\n".join(lines)


def format_mb(bytes_count: float) -> str:
    return f"{bytes_count / (1024 * 1024):.1f} MB"


def format_pct(fraction: float, digits: int = 1) -> str:
    return f"{fraction * 100:.{digits}f}%"
