"""Paper-vs-measured experiment records.

Benchmarks emit :class:`ExperimentRecord` objects; the harness prints
them and (optionally) appends them to a results file that EXPERIMENTS.md
is written from, so the recorded numbers and the printed numbers can
never diverge.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional


@dataclass
class ExperimentRecord:
    """One reproduced artifact (table row, figure series, inline number)."""

    experiment_id: str          # e.g. "E1", "T1.email"
    description: str
    paper_value: str            # what the paper reports
    measured_value: str         # what this run produced
    holds: bool                 # does the paper's qualitative claim hold?
    notes: str = ""
    details: dict = field(default_factory=dict)

    def render(self) -> str:
        status = "OK " if self.holds else "DIFF"
        lines = [
            f"[{status}] {self.experiment_id}: {self.description}",
            f"       paper:    {self.paper_value}",
            f"       measured: {self.measured_value}",
        ]
        if self.notes:
            lines.append(f"       notes:    {self.notes}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "description": self.description,
            "paper_value": self.paper_value,
            "measured_value": self.measured_value,
            "holds": self.holds,
            "notes": self.notes,
            "details": self.details,
        }


def emit(record: ExperimentRecord, results_path: Optional[Path | str] = None) -> ExperimentRecord:
    """Print a record and optionally append it to a JSONL results file."""
    print(record.render())
    if results_path is not None:
        path = Path(results_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record.to_json()) + "\n")
    return record


def within_factor(measured: float, expected: float, factor: float) -> bool:
    """True when ``measured`` is within ``factor``× of ``expected``."""
    if expected == 0:
        return measured == 0
    if measured <= 0:
        return False
    ratio = measured / expected
    return 1 / factor <= ratio <= factor
