"""Synchronization-throughput profiling for VM runs.

Attach a :class:`SyncProfiler` to a :class:`~repro.dalvik.vm.DalvikVM`
and every ``monitorenter`` completion lands in a virtual-time bucket;
afterwards, :meth:`SyncProfiler.peak_window` reports the best window —
the measurement methodology behind Table 1's "Syncs/sec" column.

Two collection modes:

* :meth:`SyncProfiler.attach` — the legacy VM hook. Counts every
  ``note_sync`` (thin-lock fast path and native mutex grants included),
  which is what the Table 1 numbers are defined over.
* :meth:`SyncProfiler.attach_events` — the typed event stream. Consumes
  :class:`~repro.core.events.AcquiredEvent` from any
  :class:`~repro.core.events.EventBus` (a VM's, a runtime's, or a whole
  facade session's), using the event's ``ts`` stamp as the bucket clock.
  This is the mode that needs no access to the VM at all — the profiler
  is just one more subscriber on the stream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.analysis.windows import Window, peak_window

if TYPE_CHECKING:
    from repro.core.events import Event, EventBus, Subscription
    from repro.dalvik.thread import VMThread
    from repro.dalvik.vm import DalvikVM


class SyncProfiler:
    """Buckets sync completions by virtual time."""

    def __init__(
        self, ticks_per_second: int, bucket_seconds: float = 0.5
    ) -> None:
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        self.ticks_per_second = ticks_per_second
        self.bucket_seconds = bucket_seconds
        self._bucket_ticks = max(
            int(round(ticks_per_second * bucket_seconds)), 1
        )
        self._counts: list[int] = []
        self.total_events = 0
        self._per_thread: dict[str, int] = {}
        self._ts_origin: Optional[float] = None

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------

    def attach(self, vm: "DalvikVM") -> "SyncProfiler":
        """Install as the VM's sync hook (returns self for chaining)."""
        vm.sync_hook = self.on_sync
        return self

    def attach_events(
        self,
        bus: "EventBus",
        source: Optional[str] = None,
        *,
        include_resumes: bool = False,
    ) -> "Subscription":
        """Consume ``AcquiredEvent`` from a typed event stream.

        ``source`` restricts the profile to one adapter on a shared
        session bus (e.g. ``"session/vm-0"``); ``None`` profiles the
        whole stream. The first event's ``ts`` becomes the bucket
        origin, so wall-clock sources (the real-thread runtime stamps
        ``time.monotonic()`` seconds) do not allocate buckets back to
        the epoch — but for that same reason, profile adapters with
        *different* clocks (a VM and a runtime) into separate profilers,
        one per source. Returns the subscription handle so the caller
        can detach with ``bus.unsubscribe(handle)``.

        ``include_resumes=True`` also counts ``ResumeEvent`` — a resumed
        yielder re-runs the request, so its eventual grant emits a
        *second* bucket entry and the rate reads as "engine decisions
        per second" rather than "acquisitions per second". The default
        (acquired-only) is the mode whose rates are comparable to
        Table 1's Syncs/sec column: one count per completed
        acquisition, exactly like the legacy ``note_sync`` hook.
        """
        kinds = ("acquired", "resume") if include_resumes else ("acquired",)
        return bus.subscribe(
            self._on_acquired_event, kinds=kinds, source=source
        )

    def _on_acquired_event(self, event: "Event") -> None:
        if self._ts_origin is None:
            self._ts_origin = event.ts
        # Bucket with float math so fractional ``ts`` units (wall-clock
        # seconds with ticks_per_second=1) keep sub-second resolution —
        # ``int()``-truncating the delta first would silently widen
        # sub-second buckets. Clamp: on a mixed-clock bus a later
        # source's clock can sit behind the origin; land those in
        # bucket 0 rather than corrupting the list with negative
        # indexing.
        delta = max(0.0, event.ts - self._ts_origin)
        seconds = delta / self.ticks_per_second
        self._land(int(seconds / self.bucket_seconds), event.thread)

    def on_sync(self, tick: int, thread: "VMThread") -> None:
        self.record(tick, thread.name)

    def record(self, tick: int, thread_name: str) -> None:
        """Land one sync completion in its virtual-time bucket."""
        self._land(tick // self._bucket_ticks, thread_name)

    def _land(self, index: int, thread_name: str) -> None:
        if index >= len(self._counts):
            self._counts.extend([0] * (index + 1 - len(self._counts)))
        self._counts[index] += 1
        self.total_events += 1
        self._per_thread[thread_name] = self._per_thread.get(thread_name, 0) + 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    @property
    def bucket_counts(self) -> tuple[int, ...]:
        return tuple(self._counts)

    def duration_seconds(self) -> float:
        return len(self._counts) * self.bucket_seconds

    def overall_rate(self) -> float:
        seconds = self.duration_seconds()
        return self.total_events / seconds if seconds > 0 else 0.0

    def peak_window(self, window_seconds: float) -> Window:
        """The paper's methodology: best ``window_seconds`` interval."""
        return peak_window(
            self._counts, self.bucket_seconds, window_seconds
        )

    def busiest_threads(self, top: int = 5) -> list[tuple[str, int]]:
        ranked = sorted(
            self._per_thread.items(), key=lambda item: item[1], reverse=True
        )
        return ranked[:top]
