"""Synchronization-throughput profiling for VM runs.

Attach a :class:`SyncProfiler` to a :class:`~repro.dalvik.vm.DalvikVM`
and every ``monitorenter`` completion lands in a virtual-time bucket;
afterwards, :meth:`SyncProfiler.peak_window` reports the best window —
the measurement methodology behind Table 1's "Syncs/sec" column.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.analysis.windows import Window, peak_window

if TYPE_CHECKING:
    from repro.dalvik.thread import VMThread
    from repro.dalvik.vm import DalvikVM


class SyncProfiler:
    """Buckets sync completions by virtual time."""

    def __init__(
        self, ticks_per_second: int, bucket_seconds: float = 0.5
    ) -> None:
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        self.ticks_per_second = ticks_per_second
        self.bucket_seconds = bucket_seconds
        self._bucket_ticks = max(
            int(round(ticks_per_second * bucket_seconds)), 1
        )
        self._counts: list[int] = []
        self.total_events = 0
        self._per_thread: dict[str, int] = {}

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------

    def attach(self, vm: "DalvikVM") -> "SyncProfiler":
        """Install as the VM's sync hook (returns self for chaining)."""
        vm.sync_hook = self.on_sync
        return self

    def on_sync(self, tick: int, thread: "VMThread") -> None:
        index = tick // self._bucket_ticks
        if index >= len(self._counts):
            self._counts.extend([0] * (index + 1 - len(self._counts)))
        self._counts[index] += 1
        self.total_events += 1
        self._per_thread[thread.name] = self._per_thread.get(thread.name, 0) + 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    @property
    def bucket_counts(self) -> tuple[int, ...]:
        return tuple(self._counts)

    def duration_seconds(self) -> float:
        return len(self._counts) * self.bucket_seconds

    def overall_rate(self) -> float:
        seconds = self.duration_seconds()
        return self.total_events / seconds if seconds > 0 else 0.0

    def peak_window(self, window_seconds: float) -> Window:
        """The paper's methodology: best ``window_seconds`` interval."""
        return peak_window(
            self._counts, self.bucket_seconds, window_seconds
        )

    def busiest_threads(self, top: int = 5) -> list[tuple[str, int]]:
        ranked = sorted(
            self._per_thread.items(), key=lambda item: item[1], reverse=True
        )
        return ranked[:top]
