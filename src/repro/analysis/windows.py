"""Sliding-window statistics over bucketed event counts.

The paper profiles each app "during several minutes of intensive usage",
then reports the 30-second interval with the highest average
synchronization throughput. This module implements that selection over
virtual-time buckets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Window:
    """A contiguous bucket range with its average event rate."""

    start_index: int
    end_index: int  # exclusive
    total_events: int
    seconds: float

    @property
    def rate(self) -> float:
        return self.total_events / self.seconds if self.seconds > 0 else 0.0


def peak_window(
    counts: Sequence[int],
    bucket_seconds: float,
    window_seconds: float,
) -> Window:
    """The highest-average-rate window of ``window_seconds`` over
    ``counts`` (one entry per bucket of ``bucket_seconds``).

    Falls back to the whole trace when it is shorter than the window —
    a short run's peak is just its overall average.
    """
    if bucket_seconds <= 0 or window_seconds <= 0:
        raise ValueError("bucket_seconds and window_seconds must be positive")
    if not counts:
        return Window(0, 0, 0, window_seconds)
    width = max(int(round(window_seconds / bucket_seconds)), 1)
    if width >= len(counts):
        return Window(
            0, len(counts), sum(counts), len(counts) * bucket_seconds
        )
    running = sum(counts[:width])
    best_total = running
    best_start = 0
    for start in range(1, len(counts) - width + 1):
        running += counts[start + width - 1] - counts[start - 1]
        if running > best_total:
            best_total = running
            best_start = start
    return Window(
        best_start, best_start + width, best_total, width * bucket_seconds
    )
