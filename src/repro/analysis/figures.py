"""ASCII figure rendering for benchmark output.

The paper's evaluation is mostly tables and inline series; when a bench
produces a sweep (overhead vs. threads, Request cost vs. history size),
these helpers print it as a terminal plot so the *shape* — flat, linear,
a knee — is visible directly in the benchmark transcript.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class Series:
    """One plotted line: (x, y) points, in x order."""

    label: str
    points: tuple[tuple[float, float], ...]

    @classmethod
    def of(cls, label: str, xs: Sequence[float], ys: Sequence[float]) -> "Series":
        if len(xs) != len(ys):
            raise ValueError(
                f"series {label!r}: {len(xs)} x-values vs {len(ys)} y-values"
            )
        return cls(label, tuple(zip(xs, ys)))


_MARKERS = "*o+x#@"


def render_figure(
    series: Sequence[Series],
    title: str = "",
    width: int = 56,
    height: int = 12,
    y_label: str = "",
    x_label: str = "",
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """Render series as an ASCII scatter/line chart.

    X positions are mapped by *rank* (evenly spaced in data order), which
    suits the paper's sweeps — 2, 8, 32, 128, 512 threads is a log-ish
    axis that rank spacing displays better than linear scaling would.
    """
    if not series or all(not s.points for s in series):
        return f"{title}\n(no data)"
    all_y = [y for s in series for _x, y in s.points]
    lo = min(all_y) if y_min is None else y_min
    hi = max(all_y) if y_max is None else y_max
    if hi == lo:
        hi = lo + 1.0

    xs: list[float] = sorted({x for s in series for x, _y in s.points})
    x_of = {x: index for index, x in enumerate(xs)}
    columns = max(len(xs) - 1, 1)

    grid = [[" "] * width for _ in range(height)]
    for series_index, one in enumerate(series):
        marker = _MARKERS[series_index % len(_MARKERS)]
        for x, y in one.points:
            column = round(x_of[x] * (width - 1) / columns)
            row = round((hi - y) * (height - 1) / (hi - lo))
            grid[row][column] = marker

    left_labels = [f"{hi:>10.2f} |", *[" " * 11 + "|"] * (height - 2), f"{lo:>10.2f} |"]
    lines = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"  {y_label}")
    for row_index, row in enumerate(grid):
        lines.append(left_labels[row_index] + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    tick_line = [" "] * (width + 12)
    for x in xs:
        column = 12 + round(x_of[x] * (width - 1) / columns)
        text = f"{x:g}"
        start = min(max(column - len(text) // 2, 12), width + 12 - len(text))
        for offset, char in enumerate(text):
            tick_line[start + offset] = char
    lines.append("".join(tick_line).rstrip())
    if x_label:
        lines.append(" " * 12 + x_label)
    if len(series) > 1:
        legend = "   ".join(
            f"{_MARKERS[i % len(_MARKERS)]} {s.label}"
            for i, s in enumerate(series)
        )
        lines.append(" " * 12 + legend)
    return "\n".join(lines)
