"""Condition variables whose monitor reacquisition is immunized.

§3.2 of the paper shows a deadlock pattern invisible to bytecode
instrumentation: ``x.wait()`` releases monitor ``x`` and *reacquires it
inside the native wait routine*, so a lock inversion involving that
reacquisition only becomes interceptable if ``Object.wait()`` itself is
patched — which is why Android Dimmunix modifies ``waitMonitor``.

:class:`DimmunixCondition` is the Python equivalent: it follows CPython's
``threading.Condition`` waiter-lock design, but releases and reacquires
its monitor through the Dimmunix lock wrappers, so the reacquisition at
the end of :meth:`wait` runs detection and avoidance like any other
``monitorenter``.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from typing import TYPE_CHECKING, Callable, Optional, Union

from repro.runtime import _originals
from repro.runtime.locks import DimmunixLock, DimmunixRLock

_monitor_ids = itertools.count(1)

if TYPE_CHECKING:
    from repro.runtime.runtime import DimmunixRuntime

MonitorLock = Union[DimmunixLock, DimmunixRLock]


class DimmunixCondition:
    """Drop-in ``threading.Condition`` with immunized reacquisition."""

    def __init__(
        self,
        lock: Optional[MonitorLock] = None,
        runtime: Optional["DimmunixRuntime"] = None,
    ) -> None:
        if lock is None:
            if runtime is None:
                raise ValueError(
                    "DimmunixCondition needs a lock or a runtime to make one"
                )
            # One name per monitor: distinct conditions must stay
            # distinct lock nodes in the event stream, or downstream
            # consumers (the trace miner above all) alias every
            # condition in the process into one lock.
            lock = runtime.rlock(
                name=f"condition-monitor-{next(_monitor_ids)}"
            )
        elif not hasattr(lock, "_acquire_restore"):
            # Fail at construction, not with an AttributeError deep in
            # wait(): a raw threading.Lock (e.g. created before the
            # platform patch was installed) cannot serve as an
            # immunized monitor.
            raise TypeError(
                "DimmunixCondition needs an immunized monitor "
                "(DimmunixLock/DimmunixRLock or compatible), got "
                f"{type(lock).__name__}"
            )
        self._lock = lock
        self._waiters: deque = deque()

    @property
    def lock(self) -> MonitorLock:
        return self._lock

    # -- monitor protocol ---------------------------------------------------

    def acquire(self, *args, **kwargs):
        return self._lock.acquire(*args, **kwargs)

    def release(self) -> None:
        self._lock.release()

    def __enter__(self):
        return self._lock.__enter__()

    def __exit__(self, exc_type, exc_value, traceback):
        # Lost-monitor handling (a wait()-reacquisition unwound by a
        # detection) lives on the lock's __exit__, covering this
        # spelling and ``with x:`` around ``Condition(x)`` alike.
        return self._lock.__exit__(exc_type, exc_value, traceback)

    def _is_owned(self) -> bool:
        return self._lock._is_owned()

    # -- waiting --------------------------------------------------------------

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Release the monitor, park, then reacquire through Dimmunix.

        Returns ``False`` on timeout, like ``threading.Condition.wait``.
        """
        if not self._is_owned():
            raise RuntimeError("cannot wait on un-acquired lock")
        waiter = _originals.allocate_lock()
        waiter.acquire()
        self._waiters.append(waiter)
        saved_state = self._lock._release_save()
        got_it = False
        try:
            if timeout is None:
                waiter.acquire()
                got_it = True
            elif timeout > 0:
                got_it = waiter.acquire(True, timeout)
            else:
                # Clamp for non-positive timeouts (an expired deadline
                # computed by a wait_for loop): one non-blocking poll,
                # matching CPython — a pending notify is consumed, but
                # the thread never parks. Passing a negative value to
                # ``waiter.acquire(True, timeout)`` would either raise
                # or (at exactly -1) wait forever.
                got_it = waiter.acquire(False)
            return got_it
        finally:
            # The reacquisition — where wait()-induced inversions deadlock
            # and where Android Dimmunix hooks waitMonitor. A detection
            # here (RAISE, or a BREAK denial) propagates with the
            # monitor unheld — the lock marks the thread so the
            # enclosing ``with`` exit skips its release.
            try:
                self._lock._acquire_restore(saved_state)
            finally:
                if not got_it:
                    try:
                        self._waiters.remove(waiter)
                    except ValueError:
                        pass

    def wait_for(
        self, predicate: Callable[[], bool], timeout: Optional[float] = None
    ) -> bool:
        """Wait until ``predicate()`` is true (or until the timeout)."""
        end_time: Optional[float] = None
        result = predicate()
        while not result:
            wait_time = None
            if timeout is not None:
                if end_time is None:
                    end_time = time.monotonic() + timeout
                wait_time = end_time - time.monotonic()
                if wait_time <= 0:
                    break
            self.wait(wait_time)
            result = predicate()
        return result

    # -- signalling -------------------------------------------------------------

    def notify(self, n: int = 1) -> None:
        if not self._is_owned():
            raise RuntimeError("cannot notify on un-acquired lock")
        woken = 0
        while woken < n and self._waiters:
            waiter = self._waiters.popleft()
            try:
                waiter.release()
            except RuntimeError:
                continue
            woken += 1

    def notify_all(self) -> None:
        self.notify(len(self._waiters))

    notifyAll = notify_all

    def __repr__(self) -> str:
        return f"<DimmunixCondition on {self._lock!r}, {len(self._waiters)} waiters>"
