"""Platform-wide deadlock immunity for a Python process.

The paper's argument (§3.1): platform-wide immunity must live in the
synchronization layer that *all* code uses — in Android's case the Dalvik
VM's monitor routines, in a Python process's case the ``threading``
module. :func:`install` replaces ``threading.Lock``, ``threading.RLock``
and ``threading.Condition`` with Dimmunix-backed factories bound to a
runtime, so every library in the process — ``queue``, thread pools,
third-party code — acquires immunized locks without being modified or
even knowing Dimmunix exists. That is the interception-based design the
paper chose over bytecode instrumentation.

The patch is process-global, reversible (:func:`uninstall`), and safe to
nest via the :func:`immunized` context manager. Dimmunix's own internals
allocate primitives through :mod:`repro.runtime._originals`, so the patch
never recurses into itself.

Known limitation (shared with any interception approach): code that does
``isinstance(x, threading.Condition)`` while the patch is active will see
a factory function rather than a class. The stdlib itself never does
this; it is rare in the wild.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator, Optional

from repro.runtime.condition import DimmunixCondition
from repro.runtime.locks import DimmunixLock, DimmunixRLock
from repro.runtime.runtime import DimmunixRuntime, get_runtime

_installed_runtime: Optional[DimmunixRuntime] = None
_originals_saved: Optional[tuple] = None


def install(runtime: Optional[DimmunixRuntime] = None) -> DimmunixRuntime:
    """Patch ``threading`` so the whole process runs with immunity.

    Idempotent: re-installing with the same runtime is a no-op;
    re-installing with a different runtime rebinds the factories.
    Returns the runtime the platform is now bound to.
    """
    global _installed_runtime, _originals_saved
    runtime = runtime or get_runtime()
    if _originals_saved is None:
        _originals_saved = (
            threading.Lock,
            threading.RLock,
            threading.Condition,
        )

    def make_lock() -> DimmunixLock:
        return DimmunixLock(runtime)

    def make_rlock() -> DimmunixRLock:
        return DimmunixRLock(runtime)

    def make_condition(lock=None) -> DimmunixCondition:
        return DimmunixCondition(lock, runtime=runtime)

    threading.Lock = make_lock
    threading.RLock = make_rlock
    threading.Condition = make_condition
    _installed_runtime = runtime
    return runtime


def uninstall() -> None:
    """Restore the original ``threading`` primitives."""
    global _installed_runtime, _originals_saved
    if _originals_saved is None:
        return
    threading.Lock, threading.RLock, threading.Condition = _originals_saved
    _originals_saved = None
    _installed_runtime = None


def is_installed() -> bool:
    return _installed_runtime is not None


def installed_runtime() -> Optional[DimmunixRuntime]:
    return _installed_runtime


@contextlib.contextmanager
def immunized(
    runtime: Optional[DimmunixRuntime] = None,
) -> Iterator[DimmunixRuntime]:
    """Scope-limited platform immunity (mainly for tests and demos)."""
    was_installed = is_installed()
    previous = installed_runtime()
    active = install(runtime)
    try:
        yield active
    finally:
        if was_installed and previous is not None:
            install(previous)
        else:
            uninstall()
