"""The real-thread adapter: blocking glue between locks and the core.

This is the analog of the paper's integration code inside ``lockMonitor``
/ ``unlockMonitor``: it serializes core calls under one process-global
lock, parks yielding threads on per-signature condition variables, applies
the detection policy, and wakes threads when releases or starvation
resolutions demand it.

The do/while retry loop from the paper's patched ``lockMonitor``::

    do {
        sigId = Request(&t->node, &mon->node, pos);
        if (sigId >= 0) wait(history[sigId]);
    } while (sigId >= 0);

appears here as :meth:`RuntimeAdapter.before_acquire`.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.runtime import _originals
from repro.config import DetectionPolicy, DimmunixConfig
from repro.core.callstack import CallStack
from repro.core.engine import DimmunixCore, RequestVerdict
from repro.core.node import LockNode, ThreadNode
from repro.core.signature import DeadlockSignature
from repro.errors import DeadlockDetectedError


def apply_detection_policy(
    core: DimmunixCore,
    config: DimmunixConfig,
    detections: list,
    on_detection: Optional[Callable[[DeadlockSignature], None]],
    thread_node: ThreadNode,
    lock_node: LockNode,
    signature: DeadlockSignature,
) -> bool:
    """Shared post-detection dispatch for every live adapter.

    Records the detection, fires the callback, then applies the
    configured policy: ``RAISE`` cancels the request and raises,
    ``BREAK`` cancels and returns ``False`` (acquisition denied),
    ``BLOCK`` returns ``True`` — paper-faithful, proceed into the
    deadlock. One copy keeps the thread and asyncio adapters
    policy-identical by construction (the parity suite depends on it).
    """
    detections.append(signature)
    if on_detection is not None:
        on_detection(signature)
    if config.detection_policy is DetectionPolicy.RAISE:
        core.cancel_request(thread_node, lock_node)
        raise DeadlockDetectedError(signature)
    if config.detection_policy is DetectionPolicy.BREAK:
        core.cancel_request(thread_node, lock_node)
        return False
    return True


class RuntimeAdapter:
    """Drives a :class:`DimmunixCore` for real ``threading`` threads."""

    def __init__(self, core: DimmunixCore, glock=None) -> None:
        self.core = core
        self.config: DimmunixConfig = core.config
        # The paper's process-global Dimmunix lock. Signature conditions
        # share it so "check state + park" is atomic. An adapter joining
        # an existing engine (the asyncio layer in cross-domain mode)
        # passes the owning adapter's lock in, so all engine calls stay
        # serialized under one lock.
        self._glock = glock if glock is not None else _originals.Lock()
        self._conditions: dict[DeadlockSignature, threading.Condition] = {}
        self._thread_nodes: dict[int, ThreadNode] = {}
        # Authoritative per-thread node cache. OS thread idents are
        # recycled after ``join()``, so the ident-keyed dict alone would
        # hand a new thread the dead thread's node (and its name — which
        # corrupts the event stream's per-thread attribution). A
        # thread-local dies with its thread and can never alias.
        self._tls = threading.local()
        self._detections: list[DeadlockSignature] = []
        self.on_detection: Optional[Callable[[DeadlockSignature], None]] = None
        # Wakes are fanned out through the engine so every adapter
        # sharing this core — not just us — re-checks its parked units.
        self._waker = core.add_waker(self._wake_signature_locked)
        # Let a liveness watchdog serialize its scans (and mitigation)
        # under the same lock as every engine call. Init-time only —
        # nothing watchdog-related ever runs on the lock path.
        if core.watchdog is not None:
            core.watchdog.bind_glock(self._glock)

    # ------------------------------------------------------------------
    # node bookkeeping
    # ------------------------------------------------------------------

    def current_thread_node(self) -> ThreadNode:
        """The RAG node of the calling thread (registered on first use)."""
        node = getattr(self._tls, "node", None)
        if node is None:
            ident = threading.get_ident()
            # Resolve the name BEFORE taking the global lock, and without
            # threading.current_thread(): during Thread bootstrap (3.11
            # sets the started event before registering in _active) that
            # call allocates a _DummyThread, whose __init__ creates
            # patched primitives, which re-enter new_lock_node -> _glock
            # -> self-deadlock. _active.get() never allocates.
            registered = threading._active.get(ident)
            name = registered.name if registered is not None else f"thread-{ident}"
            with self._glock:
                stale = self._thread_nodes.get(ident)
                if stale is not None:
                    # The ident was recycled from a joined thread whose
                    # exit was not yet observed: retire its node before
                    # registering the live thread under this ident.
                    self.core.thread_exit(stale)
                node = self.core.register_thread(name)
                self._thread_nodes[ident] = node
                if len(self._thread_nodes) % 1024 == 0:
                    self._forget_dead_threads_locked()
            self._tls.node = node
        return node

    def _forget_dead_threads_locked(self) -> None:
        alive = {t.ident for t in threading.enumerate()}
        for ident in [i for i in self._thread_nodes if i not in alive]:
            node = self._thread_nodes.pop(ident)
            self.core.thread_exit(node)

    def new_lock_node(self, name: str = "") -> LockNode:
        with self._glock:
            return self.core.register_lock(name)

    def resolve_position(self, stack: CallStack):
        """Intern ``stack`` under the global lock.

        The :class:`~repro.runtime.callsite.PositionCache` miss path:
        ``PositionTable.intern`` is get→create→set and must never race,
        so cache misses pay one glock round-trip and hits pay none.
        """
        with self._glock:
            return self.core.positions.intern(stack)

    # ------------------------------------------------------------------
    # the monitorenter / monitorexit path
    # ------------------------------------------------------------------

    def before_acquire(
        self, lock_node: LockNode, stack: CallStack, wait: bool = True
    ) -> bool:
        """Run detection + avoidance before physically acquiring.

        Returns ``True`` when the caller may proceed to acquire, ``False``
        when the ``BREAK`` policy denied the acquisition or a non-blocking
        caller (``wait=False``) would have had to park. Blocks (parked on a
        signature condition) for as long as avoidance requires.
        """
        thread_node = self.current_thread_node()
        config = self.config
        tel = self.core.telemetry
        glock_t0 = time.monotonic_ns() if tel is not None else 0
        with self._glock:
            if tel is not None:
                tel.record("glock_wait", time.monotonic_ns() - glock_t0)
            while True:
                result = self.core.request(thread_node, lock_node, stack)
                if result.resume:
                    self.core.wake_yielders(result.resume)
                if result.detected is not None:
                    return apply_detection_policy(
                        self.core,
                        config,
                        self._detections,
                        self.on_detection,
                        thread_node,
                        lock_node,
                        result.detected,
                    )
                if result.verdict is RequestVerdict.YIELD:
                    assert result.yield_on is not None
                    if not wait:
                        # try-lock semantics: report "would block".
                        self.core.abandon_yield(thread_node)
                        return False
                    condition = self._condition_for_locked(result.yield_on)
                    park_t0 = (
                        time.monotonic_ns() if tel is not None else 0
                    )
                    signaled = condition.wait(timeout=config.yield_timeout)
                    if tel is not None:
                        tel.record(
                            "yield_park", time.monotonic_ns() - park_t0
                        )
                    if not signaled and thread_node.yielding_on is not None:
                        # Safety net: treat the timeout as starvation.
                        self.core.force_bypass(thread_node)
                    continue
                return True

    def fast_acquired(self, lock_node: LockNode, position) -> bool:
        """Book a won try-lock on a history-cold position (fast path).

        The caller already holds the raw lock; the engine installs the
        queue entry and hold edge under the glock without running the
        avoidance section. ``False`` means the position is (or just
        became) hot — the caller must release the raw lock and take
        :meth:`before_acquire` instead.
        """
        # Inlined thread-local probe (the common case) — the full
        # registration path only on a thread's first acquisition.
        thread_node = getattr(self._tls, "node", None)
        if thread_node is None:
            thread_node = self.current_thread_node()
        core = self.core
        tel = core.telemetry
        glock = self._glock
        if tel is not None:
            glock_t0 = time.monotonic_ns()
            glock.acquire()
            try:
                tel.record("glock_wait", time.monotonic_ns() - glock_t0)
                return core.fast_acquired(thread_node, lock_node, position)
            finally:
                glock.release()
        glock.acquire()
        try:
            return core.fast_acquired(thread_node, lock_node, position)
        finally:
            glock.release()

    def after_acquire(self, lock_node: LockNode) -> None:
        thread_node = self.current_thread_node()
        with self._glock:
            self.core.acquired(thread_node, lock_node)

    def before_release(self, lock_node: LockNode) -> None:
        # Attribute the release to the RAG's recorded holder, not the
        # caller: a lock may legally be released by a different thread
        # than acquired it (``threading.Lock`` semantics), and charging
        # the wrong node would leave a stale hold edge and a pinned
        # queue cell behind forever.
        caller_node = getattr(self._tls, "node", None)
        if caller_node is None:
            caller_node = self.current_thread_node()
        with self._glock:
            holder = lock_node.owner
            result = self.core.release(
                holder if holder is not None else caller_node, lock_node
            )
            if result.notify:
                self.core.notify_signatures(result.notify)

    def abandon_acquire(self, lock_node: LockNode) -> None:
        """Roll back a granted request whose physical acquire failed."""
        thread_node = self.current_thread_node()
        with self._glock:
            self.core.cancel_request(thread_node, lock_node)

    # ------------------------------------------------------------------
    # parked-thread management
    # ------------------------------------------------------------------

    def _condition_for_locked(
        self, signature: DeadlockSignature
    ) -> threading.Condition:
        condition = self._conditions.get(signature)
        if condition is None:
            condition = _originals.Condition(self._glock)
            self._conditions[signature] = condition
        return condition

    def _wake_signature_locked(self, signature: DeadlockSignature) -> None:
        """This adapter's engine waker: notify the signature's condition.

        Invoked (under the global lock) by ``core.notify_signatures`` /
        ``core.wake_yielders``, whichever adapter triggered the wake.
        """
        condition = self._conditions.get(signature)
        if condition is not None:
            condition.notify_all()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def detections(self) -> tuple[DeadlockSignature, ...]:
        return tuple(self._detections)

    def wait_for_detection(self, timeout: float = 5.0) -> bool:
        """Poll until some thread records a detection (tests, demos)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._detections:
                return True
            time.sleep(0.001)
        return bool(self._detections)
