"""Call-site capture for the real-thread runtime.

``monitorenter`` positions in the paper come from ``dvmGetCallStack``,
which copies the top frame of the acquiring thread's stack into a
pre-allocated per-thread buffer. Here the equivalent is walking Python
frames with ``sys._getframe`` — skipping the runtime's own frames and the
stdlib ``threading`` module so the position names *application* code.

§4 sketches the zero-cost alternative: the compiler assigns a static id to
every synchronization statement and passes it to ``lockMonitor``. The
:class:`StaticSiteRegistry` implements that mode — callers pass a small
integer and no stack walk happens at all (ablation A2).
"""

from __future__ import annotations

import importlib.util
import os
import sys
import threading
from typing import Optional

from repro.core.callstack import CallStack, Frame

_RUNTIME_DIR = os.path.dirname(os.path.abspath(__file__))
# The sibling asyncio adapter layer captures positions through this
# module too; its machinery frames must be filtered the same way
# threading internals are, so an ``async with lock:`` position names the
# application's statement. The machinery modules are enumerated — not
# the whole directory — because application-visible code also lives
# there (the scenario pack, whose lock statements are exactly the
# positions the async workloads need), and a future app-visible module
# must default to *application*, not silently vanish from stacks.
_AIO_DIR = os.path.join(os.path.dirname(_RUNTIME_DIR), "aio")
_AIO_INTERNAL = frozenset(
    os.path.join(_AIO_DIR, name)
    for name in (
        "__init__.py",
        "_originals.py",
        "adapter.py",
        "bridge.py",
        "condition.py",
        "locks.py",
        "patch.py",
        "runtime.py",
    )
)
# The stdlib asyncio machinery is a *boundary*, not a skip: a task
# coroutine's outermost frame backs onto Task.__step and the running
# event loop, and below those sit the frames of whoever called
# ``loop.run_*`` — code that did not perform this acquisition. The walk
# must stop there or every task position collapses onto the
# ``asyncio.run(...)`` line. Resolved via find_spec so threaded-only
# processes do not pay the asyncio package import at startup.
_ASYNCIO_DIR = os.path.dirname(
    os.path.abspath(importlib.util.find_spec("asyncio").origin)
)
_THREADING_FILE = os.path.abspath(threading.__file__)
_CONTEXTLIB_FILE = os.path.abspath(getattr(sys.modules.get("contextlib"), "__file__", "contextlib"))

FALLBACK_STACK = CallStack.single("<no-python-frame>", 0, "<native>")


def _is_internal(filename: str) -> bool:
    return (
        filename.startswith(_RUNTIME_DIR)
        or filename in _AIO_INTERNAL
        or filename == _THREADING_FILE
        or filename == _CONTEXTLIB_FILE
    )


def _is_boundary(filename: str) -> bool:
    return filename.startswith(_ASYNCIO_DIR)


# Interning cache: one CallStack object per distinct frame-key tuple.
# Program locations are finite and stable, so this is bounded by the
# number of synchronization sites — the same argument that lets the
# paper intern Position objects. Concurrent writes are benign (idempotent
# values under the GIL).
_stack_cache: dict[tuple, CallStack] = {}


def capture_stack(depth: int, skip: int = 1) -> CallStack:
    """Capture up to ``depth`` application frames of the calling thread.

    ``skip=1`` starts the walk at the direct caller of this function;
    each additional unit drops one more intermediate helper frame.
    Internal frames — this package and the stdlib ``threading``/
    ``contextlib`` machinery — are then skipped wholesale, so the
    captured position is the application's lock statement, exactly like
    the monitorenter location in bytecode.

    Stacks are interned by their frame keys: repeated acquisitions at the
    same site return the same object with no allocation, the Python
    analog of the paper's reused per-thread stack buffer.
    """
    try:
        frame = sys._getframe(skip)
    except ValueError:
        return FALLBACK_STACK
    key_parts: list = []
    raw_frames: list = []
    while frame is not None and len(raw_frames) < depth:
        code = frame.f_code
        filename = code.co_filename
        if _is_boundary(filename):
            break
        if not _is_internal(filename):
            lineno = frame.f_lineno
            key_parts.append(filename)
            key_parts.append(lineno)
            raw_frames.append((filename, lineno, code.co_name))
        frame = frame.f_back
    if not raw_frames:
        return FALLBACK_STACK
    cache_key = tuple(key_parts)
    cached = _stack_cache.get(cache_key)
    if cached is not None:
        return cached
    stack = CallStack(
        Frame(filename, lineno, function)
        for filename, lineno, function in raw_frames
    )
    _stack_cache[cache_key] = stack
    return stack


class StaticSiteRegistry:
    """Registry of compiler-style static synchronization-site ids.

    Each id maps to a stable synthetic call stack, so positions derived
    from ids are interchangeable with stack-derived positions everywhere
    else in the system (history files mix freely). Ids are bound to
    program locations by construction — the caller allocates one id per
    site — which is precisely the contract the paper's compiler extension
    would provide.
    """

    def __init__(self, namespace: str = "static") -> None:
        self._namespace = namespace
        self._stacks: dict[int, CallStack] = {}

    def stack_for(self, site_id: int) -> CallStack:
        stack = self._stacks.get(site_id)
        if stack is None:
            stack = CallStack.single(
                f"<{self._namespace}>", site_id, f"site_{site_id}"
            )
            self._stacks[site_id] = stack
        return stack

    def __len__(self) -> int:
        return len(self._stacks)


def resolve_stack(
    depth: int,
    site_id: Optional[int],
    registry: Optional[StaticSiteRegistry],
    skip: int = 1,
) -> CallStack:
    """Static-id stack when a site id is given, else a captured stack."""
    if site_id is not None and registry is not None:
        return registry.stack_for(site_id)
    return capture_stack(depth, skip=skip + 1)
