"""Call-site capture for the real-thread runtime.

``monitorenter`` positions in the paper come from ``dvmGetCallStack``,
which copies the top frame of the acquiring thread's stack into a
pre-allocated per-thread buffer. Here the equivalent is walking Python
frames with ``sys._getframe`` — skipping the runtime's own frames and the
stdlib ``threading`` module so the position names *application* code.

§4 sketches the zero-cost alternative: the compiler assigns a static id to
every synchronization statement and passes it to ``lockMonitor``. The
:class:`StaticSiteRegistry` implements that mode — callers pass a small
integer and no stack walk happens at all (ablation A2).
"""

from __future__ import annotations

import importlib.util
import os
import sys
import threading
import weakref
from typing import Callable, Optional

from repro.core.callstack import CallStack, Frame

_RUNTIME_DIR = os.path.dirname(os.path.abspath(__file__))
# The sibling asyncio adapter layer captures positions through this
# module too; its machinery frames must be filtered the same way
# threading internals are, so an ``async with lock:`` position names the
# application's statement. The machinery modules are enumerated — not
# the whole directory — because application-visible code also lives
# there (the scenario pack, whose lock statements are exactly the
# positions the async workloads need), and a future app-visible module
# must default to *application*, not silently vanish from stacks.
_AIO_DIR = os.path.join(os.path.dirname(_RUNTIME_DIR), "aio")
_AIO_INTERNAL = frozenset(
    os.path.join(_AIO_DIR, name)
    for name in (
        "__init__.py",
        "_originals.py",
        "adapter.py",
        "bridge.py",
        "condition.py",
        "locks.py",
        "patch.py",
        "runtime.py",
    )
)
# The stdlib asyncio machinery is a *boundary*, not a skip: a task
# coroutine's outermost frame backs onto Task.__step and the running
# event loop, and below those sit the frames of whoever called
# ``loop.run_*`` — code that did not perform this acquisition. The walk
# must stop there or every task position collapses onto the
# ``asyncio.run(...)`` line. Resolved via find_spec so threaded-only
# processes do not pay the asyncio package import at startup.
_ASYNCIO_DIR = os.path.dirname(
    os.path.abspath(importlib.util.find_spec("asyncio").origin)
)
_THREADING_FILE = os.path.abspath(threading.__file__)
# Resolved via find_spec like asyncio above: the old sys.modules lookup
# fell back to abspath("contextlib") — a cwd-relative path that matches
# no real frame — whenever contextlib had not been imported yet, so
# @contextmanager helper frames silently stopped being filtered.
_CONTEXTLIB_FILE = os.path.abspath(
    importlib.util.find_spec("contextlib").origin
)

FALLBACK_STACK = CallStack.single("<no-python-frame>", 0, "<native>")


def _is_internal(filename: str) -> bool:
    return (
        filename.startswith(_RUNTIME_DIR)
        or filename in _AIO_INTERNAL
        or filename == _THREADING_FILE
        or filename == _CONTEXTLIB_FILE
    )


def _is_boundary(filename: str) -> bool:
    return filename.startswith(_ASYNCIO_DIR)


# Memoized filename classification, shared by the full walk and the
# position cache's walk so the two can never disagree about which frame
# is the "first application frame". Filenames are finite (one per code
# file), so the memo is bounded; concurrent writes are benign
# (idempotent values under the GIL).
_APP, _INTERNAL, _BOUNDARY = 0, 1, 2
_classify: dict[str, int] = {}


def _classify_filename(filename: str) -> int:
    if _is_boundary(filename):
        kind = _BOUNDARY
    elif _is_internal(filename):
        kind = _INTERNAL
    else:
        kind = _APP
    _classify[filename] = kind
    return kind


# Interning cache: one CallStack object per distinct frame-key tuple.
# Program locations are finite and stable, so this is bounded by the
# number of synchronization sites — the same argument that lets the
# paper intern Position objects. Concurrent writes are benign (idempotent
# values under the GIL).
_stack_cache: dict[tuple, CallStack] = {}


def capture_stack(depth: int, skip: int = 1) -> CallStack:
    """Capture up to ``depth`` application frames of the calling thread.

    ``skip=1`` starts the walk at the direct caller of this function;
    each additional unit drops one more intermediate helper frame.
    Internal frames — this package and the stdlib ``threading``/
    ``contextlib`` machinery — are then skipped wholesale, so the
    captured position is the application's lock statement, exactly like
    the monitorenter location in bytecode.

    Stacks are interned by their frame keys: repeated acquisitions at the
    same site return the same object with no allocation, the Python
    analog of the paper's reused per-thread stack buffer.
    """
    try:
        frame = sys._getframe(skip)
    except ValueError:
        return FALLBACK_STACK
    key_parts: list = []
    raw_frames: list = []
    while frame is not None and len(raw_frames) < depth:
        code = frame.f_code
        filename = code.co_filename
        kind = _classify.get(filename)
        if kind is None:
            kind = _classify_filename(filename)
        if kind == _BOUNDARY:
            break
        if kind == _APP:
            lineno = frame.f_lineno
            key_parts.append(filename)
            key_parts.append(lineno)
            raw_frames.append((filename, lineno, code.co_name))
        frame = frame.f_back
    if not raw_frames:
        return FALLBACK_STACK
    cache_key = tuple(key_parts)
    cached = _stack_cache.get(cache_key)
    if cached is not None:
        return cached
    stack = CallStack(
        Frame(filename, lineno, function)
        for filename, lineno, function in raw_frames
    )
    _stack_cache[cache_key] = stack
    return stack


# ----------------------------------------------------------------------
# the (code, lasti) position cache — the capture fast path
# ----------------------------------------------------------------------

# Cache keys use id(f_code), and CPython recycles object ids: a cached
# entry for a dead code object could be handed to an unrelated new code
# object allocated at the same address. Every code object that enters a
# cache is therefore watched with a weakref whose death callback bumps
# this global generation; per-thread caches flush themselves on a
# generation mismatch. The callback runs during deallocation — strictly
# before the id can be reused — so a stale hit is impossible.
_code_generation = 0
_code_watches: dict[int, weakref.ref] = {}


class _CodeWatch(weakref.ref):
    __slots__ = ("code_id",)


def _on_code_dead(ref) -> None:
    global _code_generation
    _code_generation += 1
    _code_watches.pop(ref.code_id, None)


def _watch_code(code) -> None:
    code_id = id(code)
    if code_id not in _code_watches:
        ref = _CodeWatch(code, _on_code_dead)
        ref.code_id = code_id
        _code_watches[code_id] = ref


class PositionCache:
    """Per-thread ``(id(code), f_lasti)`` -> resolved ``Position`` cache.

    The capture fast path: a repeat acquisition at a known call site
    costs one ``sys._getframe`` probe, a couple of memoized-classifier
    dict hits to find the application frame, and one dict hit — instead
    of the full frame walk plus stack/position interning. The key is the
    *application caller frame's* code object and instruction offset, so
    two ``with lock:`` statements in one function cache separately and
    a helper called from two places still resolves per acquiring line
    (``f_lasti`` pins the bytecode site; the recorded position is still
    the file:line pair, exactly what the uncached walk produces).

    Soundness envelope:

    * only built for ``stack_depth == 1`` dynamic capture (deeper
      stacks depend on frames above the keyed one, which the key cannot
      see; static-id mode never walks at all);
    * misses resolve through ``resolver`` — the owning adapter's
      glock'd ``PositionTable.intern`` — so the table's one-object-per-
      location invariant is never raced;
    * stores are per-thread (``threading.local``), so lookups take no
      lock; id-recycling is defeated by the generation scheme above.
    """

    __slots__ = ("_resolver", "_tls")

    def __init__(self, resolver: Callable[[CallStack], object]) -> None:
        self._resolver = resolver
        self._tls = threading.local()

    def lookup_or_resolve(self, skip: int = 2):
        """The ``Position`` for the calling application frame, or ``None``.

        ``skip=2`` starts at the caller of the lock method invoking this.
        Returns ``None`` when no application frame exists before the
        asyncio boundary (the caller falls back to the exact capture,
        which applies its fallback-stack policy).
        """
        try:
            frame = sys._getframe(skip)
        except ValueError:
            return None
        code = None
        while frame is not None:
            code = frame.f_code
            filename = code.co_filename
            kind = _classify.get(filename)
            if kind is None:
                kind = _classify_filename(filename)
            if kind == _APP:
                break
            if kind == _BOUNDARY:
                return None
            frame = frame.f_back
        if frame is None:
            return None
        # Two int-keyed dict hops (code id, then lasti) instead of one
        # (id, lasti)-tuple key: int hashing is identity, and the hot
        # hit skips the per-lookup tuple allocation.
        slots = self._tls.__dict__
        entries = slots.get("entries")
        if entries is None or slots["generation"] != _code_generation:
            entries = {}
            slots["entries"] = entries
            slots["generation"] = _code_generation
        sites = entries.get(id(code))
        if sites is not None:
            position = sites.get(frame.f_lasti)
            if position is not None:
                return position
        lineno = frame.f_lineno
        stack_key = (filename, lineno)
        stack = _stack_cache.get(stack_key)
        if stack is None:
            stack = CallStack.single(filename, lineno, code.co_name)
            _stack_cache[stack_key] = stack
        position = self._resolver(stack)
        try:
            _watch_code(code)
        except TypeError:  # pragma: no cover - unweakrefable code
            return position  # cannot invalidate -> do not cache
        if sites is None:
            entries[id(code)] = sites = {}
        sites[frame.f_lasti] = position
        return position

    def entry_count(self) -> int:
        """Live entries cached for the calling thread (introspection)."""
        slots = self._tls.__dict__
        if slots.get("generation") != _code_generation:
            return 0
        entries = slots.get("entries")
        if not entries:
            return 0
        return sum(len(sites) for sites in entries.values())


class StaticSiteRegistry:
    """Registry of compiler-style static synchronization-site ids.

    Each id maps to a stable synthetic call stack, so positions derived
    from ids are interchangeable with stack-derived positions everywhere
    else in the system (history files mix freely). Ids are bound to
    program locations by construction — the caller allocates one id per
    site — which is precisely the contract the paper's compiler extension
    would provide.
    """

    def __init__(self, namespace: str = "static") -> None:
        self._namespace = namespace
        self._stacks: dict[int, CallStack] = {}

    def stack_for(self, site_id: int) -> CallStack:
        stack = self._stacks.get(site_id)
        if stack is None:
            stack = CallStack.single(
                f"<{self._namespace}>", site_id, f"site_{site_id}"
            )
            self._stacks[site_id] = stack
        return stack

    def __len__(self) -> int:
        return len(self._stacks)


def resolve_stack(
    depth: int,
    site_id: Optional[int],
    registry: Optional[StaticSiteRegistry],
    skip: int = 1,
) -> CallStack:
    """Static-id stack when a site id is given, else a captured stack."""
    if site_id is not None and registry is not None:
        return registry.stack_for(site_id)
    return capture_stack(depth, skip=skip + 1)
