"""Deadlock immunity for real ``threading`` code.

Two ways to use it:

1. **Explicit** — create a :class:`DimmunixRuntime` and use its lock
   factories (``runtime.lock()``, ``runtime.rlock()``,
   ``runtime.condition()``) or the Java-style ``synchronized`` helpers.

2. **Platform-wide** — call :func:`repro.runtime.patch.install` once; from
   then on every ``threading.Lock/RLock/Condition`` created anywhere in
   the process is immunized, with no change to application code. This is
   the analog of flashing the Dimmunix-enabled Android image.
"""

from repro.runtime.callsite import (
    StaticSiteRegistry,
    capture_stack,
    resolve_stack,
)
from repro.runtime.condition import DimmunixCondition
from repro.runtime.interception import RuntimeAdapter
from repro.runtime.locks import DimmunixLock, DimmunixRLock
from repro.runtime.monitor_registry import MonitorRegistry
from repro.runtime.runtime import (
    DimmunixRuntime,
    get_runtime,
    init_runtime,
    reset_runtime,
)
from repro.runtime.synchronized import (
    notify_all_obj,
    notify_obj,
    synchronized,
    synchronized_method,
    wait_on,
)

__all__ = [
    "DimmunixRuntime",
    "DimmunixLock",
    "DimmunixRLock",
    "DimmunixCondition",
    "RuntimeAdapter",
    "MonitorRegistry",
    "StaticSiteRegistry",
    "capture_stack",
    "resolve_stack",
    "get_runtime",
    "init_runtime",
    "reset_runtime",
    "synchronized",
    "synchronized_method",
    "wait_on",
    "notify_obj",
    "notify_all_obj",
]
