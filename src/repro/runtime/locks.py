"""Immunized lock types for real ``threading`` code.

:class:`DimmunixLock` corresponds to a non-reentrant mutex;
:class:`DimmunixRLock` to a Java-style reentrant monitor (recursive
acquisitions by the owner do not re-enter Dimmunix, exactly as nested
``monitorenter`` on an owned monitor is free in the VM).

Each lock owns its RAG :class:`~repro.core.node.LockNode` for the lifetime
of the lock — the paper's "node field embedded in the Monitor struct" that
makes RAG lookup zero-overhead.

Both types are drop-in compatible with their ``threading`` namesakes
(``acquire(blocking, timeout)``, context-manager protocol, ``locked()``),
which is what lets :mod:`repro.runtime.patch` substitute them
platform-wide. They accept an extra keyword, ``site_id``, implementing the
paper's §4 compiler-assigned static synchronization-site ids.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

from repro.core.callstack import CallStack
from repro.errors import DeadlockDetectedError
from repro.runtime import _originals
from repro.runtime.callsite import resolve_stack

if TYPE_CHECKING:
    from repro.runtime.runtime import DimmunixRuntime


class LostRestoreMarker:
    """Execution units whose wait()-reacquisition was unwound.

    A detection during a condition's monitor reacquisition (RAISE
    raising, or a BREAK denial) leaves the unit *not* holding the lock;
    its enclosing ``with``/``async with`` exit must skip the release or
    it masks the DeadlockDetectedError with a RuntimeError. One shared
    protocol for all four lock classes — threaded and asyncio — keyed by
    whatever identifies the execution unit (thread ident, task id):

    * :meth:`mark` on the unwound reacquisition,
    * :meth:`clear` on every successful acquire (a fresh acquisition
      supersedes a stale marker — the unit may recover by calling
      ``acquire()`` directly, not only via ``__enter__``),
    * :meth:`lost` in ``__exit__`` — true means skip the release. The
      check is deliberately non-destructive: one lost reacquisition on
      a reentrant monitor unwinds through *several* nested ``with``
      exits, and every one of them must skip; only the next successful
      acquire clears the state.
    """

    __slots__ = ("_lost",)

    def __init__(self) -> None:
        self._lost: set[int] = set()

    def __bool__(self) -> bool:
        # Truthiness = "any unit is marked". Fast paths test this before
        # computing their key (get_ident / id(current_task) are not
        # free), since the set is empty except after a detection.
        return bool(self._lost)

    def mark(self, key: int) -> None:
        self._lost.add(key)

    def clear(self, key: int) -> None:
        if self._lost:
            self._lost.discard(key)

    def lost(self, key: int) -> bool:
        return bool(self._lost) and key in self._lost

    def deny(self, key: int) -> None:
        """Mark + raise for a BREAK-policy reacquisition denial.

        One site for the message and the deliberate ``signature=None``
        (the denial is observed through a boolean return; naming a
        signature from the adapter's shared list would race with
        concurrent detections).
        """
        self.mark(key)
        raise DeadlockDetectedError(
            None, "monitor reacquisition denied (BREAK policy)"
        )


class DimmunixLock:
    """A ``threading.Lock`` with deadlock immunity."""

    _reentrant = False

    def __init__(self, runtime: "DimmunixRuntime", name: str = "") -> None:
        self._runtime = runtime
        self._adapter = runtime.adapter
        self._raw = _originals.Lock()
        self._enabled = runtime.config.enabled
        self._depth = runtime.config.stack_depth
        # Cached at construction so the acquire path's telemetry guard
        # is one attribute load (None when telemetry — or the whole
        # runtime — is off).
        self._telemetry = self._adapter.core.telemetry if self._enabled else None
        # Capture fast path: the runtime's (code, lasti) position cache
        # (None when disabled or when the capture shape rules it out)
        # and whether a cold-position try-lock may skip the avoidance
        # section. fast_path needs a pre-glock Position, hence the cache.
        self._cache = getattr(runtime, "position_cache", None) if self._enabled else None
        self._fast_path = runtime.config.fast_path and self._cache is not None
        # Pre-bound hot-path methods (a bound method lookup per acquire
        # is measurable at this budget).
        self._lookup = self._cache.lookup_or_resolve if self._cache is not None else None
        self._fast_book = self._adapter.fast_acquired
        self.node = self._adapter.new_lock_node(name) if self._enabled else None
        self.name = name or (self.node.name if self.node else "lock")
        # Kept on the lock (not the condition) so both monitor
        # spellings — ``with cond:`` and ``with x:`` around
        # ``Condition(x)`` — are covered by the one ``__exit__`` that
        # owns the release.
        self._lost_restore = LostRestoreMarker()

    # -- acquire / release ------------------------------------------------

    def acquire(
        self,
        blocking: bool = True,
        timeout: float = -1,
        site_id: Optional[int] = None,
        stack: Optional["CallStack"] = None,
    ) -> bool:
        """Acquire the lock, running Dimmunix detection/avoidance first.

        With ``blocking=False``, avoidance that would park the thread is
        reported as "would block" (returns ``False``) — a try-lock must
        never wait, not even for immunity. ``stack`` lets callers supply a
        pre-built position (synchronized methods, the VM substrate).
        """
        if not self._enabled:
            if timeout >= 0:
                return self._raw.acquire(blocking, timeout)
            return self._raw.acquire(blocking)
        if stack is None:
            tel = self._telemetry
            lookup = self._lookup
            if lookup is not None and site_id is None:
                if tel is not None:
                    capture_t0 = time.monotonic_ns()
                    position = lookup()
                    tel.record("capture", time.monotonic_ns() - capture_t0)
                else:
                    position = lookup()
                if position is not None:
                    # No-history fast path: a *won* try-lock never waits,
                    # so it cannot extend a cycle; if the engine confirms
                    # the position is still history-cold it books the
                    # hold without the avoidance section. A refusal (the
                    # position went hot) drops the raw lock and falls
                    # back to the exact path below.
                    if (
                        self._fast_path
                        and not position.in_history
                        and self._raw.acquire(False)
                    ):
                        if self._fast_book(self.node, position):
                            lr = self._lost_restore
                            if lr:
                                lr.clear(_originals.get_ident())
                            return True
                        self._raw.release()
                    stack = position.stack
            if stack is None:
                if tel is not None:
                    capture_t0 = time.monotonic_ns()
                    stack = resolve_stack(
                        self._depth, site_id, self._runtime.static_sites, skip=1
                    )
                    tel.record("capture", time.monotonic_ns() - capture_t0)
                else:
                    stack = resolve_stack(
                        self._depth, site_id, self._runtime.static_sites, skip=1
                    )
        allowed = self._adapter.before_acquire(
            self.node, stack, wait=blocking
        )
        if not allowed:
            return False
        if timeout >= 0:
            got_it = self._raw.acquire(blocking, timeout)
        else:
            got_it = self._raw.acquire(blocking)
        if got_it:
            self._adapter.after_acquire(self.node)
            self._lost_restore.clear(_originals.get_ident())
        else:
            self._adapter.abandon_acquire(self.node)
        return got_it

    def release(self) -> None:
        if self._enabled:
            self._adapter.before_release(self.node)
        self._raw.release()

    def locked(self) -> bool:
        return self._raw.locked()

    # -- protocol used by DimmunixCondition --------------------------------

    def _is_owned(self) -> bool:
        # A plain mutex does not track its owner; mirror CPython's
        # Condition heuristic: if a try-lock succeeds, nobody owned it.
        if self._raw.acquire(False):
            self._raw.release()
            return False
        return True

    def _release_save(self) -> None:
        self.release()

    def _acquire_restore(self, state) -> None:
        # Reacquisition goes through the full Dimmunix path — the paper's
        # waitMonitor change (§3.2). A detection here (RAISE raising, or
        # a BREAK denial — the only way a blocking acquire returns
        # False) means the monitor stays unheld: mark the thread so its
        # ``with`` exit skips the release instead of masking the error.
        ident = _originals.get_ident()
        try:
            got_it = self.acquire()
        except DeadlockDetectedError:
            self._lost_restore.mark(ident)
            raise
        if not got_it:
            self._lost_restore.deny(ident)

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> bool:
        # One extra internal frame (this method) is skipped by the
        # call-site filter, so the position is the ``with`` statement.
        return self.acquire()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if self._lost_restore.lost(_originals.get_ident()):
            # This thread's wait() lost the monitor to an unwound
            # reacquisition; there is nothing to release.
            return
        self.release()

    def __repr__(self) -> str:
        state = "locked" if self.locked() else "unlocked"
        return f"<DimmunixLock {self.name} {state}>"


class DimmunixRLock:
    """A ``threading.RLock`` with deadlock immunity.

    Only the first (non-recursive) acquisition and the final release go
    through Dimmunix; recursive pairs are plain counter updates, as in a
    reentrant Java monitor.
    """

    _reentrant = True

    def __init__(self, runtime: "DimmunixRuntime", name: str = "") -> None:
        self._runtime = runtime
        self._adapter = runtime.adapter
        self._raw = _originals.Lock()
        self._enabled = runtime.config.enabled
        self._depth = runtime.config.stack_depth
        self._telemetry = self._adapter.core.telemetry if self._enabled else None
        # See DimmunixLock: capture fast path wiring.
        self._cache = getattr(runtime, "position_cache", None) if self._enabled else None
        self._fast_path = runtime.config.fast_path and self._cache is not None
        self._lookup = self._cache.lookup_or_resolve if self._cache is not None else None
        self._fast_book = self._adapter.fast_acquired
        self._owner: Optional[int] = None
        self._count = 0
        self.node = self._adapter.new_lock_node(name) if self._enabled else None
        self.name = name or (self.node.name if self.node else "rlock")
        # See DimmunixLock: threads whose reacquisition was unwound.
        self._lost_restore = LostRestoreMarker()

    def acquire(
        self,
        blocking: bool = True,
        timeout: float = -1,
        site_id: Optional[int] = None,
        stack: Optional["CallStack"] = None,
    ) -> bool:
        me = _originals.get_ident()
        if self._owner == me:
            self._count += 1
            return True
        if self._enabled:
            if stack is None:
                tel = self._telemetry
                lookup = self._lookup
                if lookup is not None and site_id is None:
                    if tel is not None:
                        capture_t0 = time.monotonic_ns()
                        position = lookup()
                        tel.record(
                            "capture", time.monotonic_ns() - capture_t0
                        )
                    else:
                        position = lookup()
                    if position is not None:
                        # See DimmunixLock.acquire: won try-lock on a
                        # history-cold position skips the avoidance
                        # section. Ownership is claimed only after the
                        # engine books the hold.
                        if (
                            self._fast_path
                            and not position.in_history
                            and self._raw.acquire(False)
                        ):
                            if self._fast_book(self.node, position):
                                self._owner = me
                                self._count = 1
                                self._lost_restore.clear(me)
                                return True
                            self._raw.release()
                        stack = position.stack
                if stack is None:
                    if tel is not None:
                        capture_t0 = time.monotonic_ns()
                        stack = resolve_stack(
                            self._depth,
                            site_id,
                            self._runtime.static_sites,
                            skip=1,
                        )
                        tel.record(
                            "capture", time.monotonic_ns() - capture_t0
                        )
                    else:
                        stack = resolve_stack(
                            self._depth,
                            site_id,
                            self._runtime.static_sites,
                            skip=1,
                        )
            allowed = self._adapter.before_acquire(
                self.node, stack, wait=blocking
            )
            if not allowed:
                return False
        if timeout >= 0:
            got_it = self._raw.acquire(blocking, timeout)
        else:
            got_it = self._raw.acquire(blocking)
        if got_it:
            self._owner = me
            self._count = 1
            if self._enabled:
                self._adapter.after_acquire(self.node)
            self._lost_restore.clear(me)
        elif self._enabled:
            self._adapter.abandon_acquire(self.node)
        return got_it

    def release(self) -> None:
        if self._owner != _originals.get_ident():
            raise RuntimeError("cannot release un-acquired lock")
        self._count -= 1
        if self._count:
            return
        self._owner = None
        if self._enabled:
            self._adapter.before_release(self.node)
        self._raw.release()

    # -- protocol used by DimmunixCondition --------------------------------

    def _is_owned(self) -> bool:
        return self._owner == _originals.get_ident()

    def _release_save(self) -> int:
        """Fully release regardless of recursion depth; return the depth."""
        if self._owner != _originals.get_ident():
            raise RuntimeError("cannot wait on un-acquired lock")
        count = self._count
        self._count = 0
        self._owner = None
        if self._enabled:
            self._adapter.before_release(self.node)
        self._raw.release()
        return count

    def _acquire_restore(self, state: int) -> None:
        """Reacquire through the full Dimmunix path, then restore depth.

        This is the paper's ``waitMonitor`` change: the reacquisition at
        the end of ``Object.wait()`` must be visible to Dimmunix, or
        wait()-induced lock inversions are invisible (§3.2). A detection
        here (RAISE raising, or a BREAK denial — the only way a blocking
        acquire returns False) leaves the monitor unheld: the thread is
        marked so its ``with`` exit skips the release, and the depth is
        NOT restored — doing so without ownership would corrupt the
        monitor.
        """
        ident = _originals.get_ident()
        try:
            got_it = self.acquire()
        except DeadlockDetectedError:
            self._lost_restore.mark(ident)
            raise
        if not got_it:
            self._lost_restore.deny(ident)
        self._count = state

    def locked(self) -> bool:
        return self._raw.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if self._lost_restore.lost(_originals.get_ident()):
            return
        self.release()

    def __repr__(self) -> str:
        return (
            f"<DimmunixRLock {self.name} owner={self._owner} "
            f"count={self._count}>"
        )
