"""Java-style synchronized blocks, methods, and Object.wait/notify.

The paper's design leans on the semantics of synchronized blocks: they are
intra-procedural and (in wrappers) non-nested, which is what makes depth-1
outer call stacks safe (§3.2). These helpers give Python the same surface:

* ``with synchronized(obj):`` — a synchronized block on any object; the
  position is the ``with`` statement's call site.
* ``@synchronized_method`` — a synchronized method; the position is the
  method definition itself (a static location, like Java's method-entry
  monitorenter — no stack walk at call time).
* ``wait_on(obj)`` / ``notify_obj(obj)`` / ``notify_all_obj(obj)`` —
  ``Object.wait()`` / ``notify()`` / ``notifyAll()``, with the monitor
  reacquisition inside ``wait`` running through Dimmunix (§3.2's
  waitMonitor patch).
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING, Optional

from repro.core.callstack import CallStack

if TYPE_CHECKING:
    from repro.runtime.runtime import DimmunixRuntime


def _require_runtime(runtime: Optional["DimmunixRuntime"]) -> "DimmunixRuntime":
    if runtime is not None:
        return runtime
    from repro.runtime.runtime import get_runtime

    return get_runtime()


class synchronized:
    """Context manager: ``with synchronized(obj): ...``

    Implemented as a class (not ``@contextmanager``) so entry costs one
    call, and the captured position — resolved inside the lock wrapper —
    lands on the application's ``with`` line.
    """

    __slots__ = ("_monitor",)

    def __init__(
        self, obj: object, runtime: Optional["DimmunixRuntime"] = None
    ) -> None:
        self._monitor = _require_runtime(runtime).monitors.monitor_for(obj)

    def __enter__(self):
        self._monitor.acquire()
        return self._monitor

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self._monitor.release()


def synchronized_method(func):
    """Decorator making a method synchronized on ``self``.

    The synchronization position is the method's definition site, derived
    statically from its code object — the zero-overhead scheme §4 proposes
    for compiler-assigned ids: no stack retrieval happens per call.
    """
    code = func.__code__
    static_stack = CallStack.single(
        code.co_filename, code.co_firstlineno, code.co_name
    )

    @functools.wraps(func)
    def wrapper(self, *args, **kwargs):
        from repro.runtime.runtime import get_runtime

        monitor = get_runtime().monitors.monitor_for(self)
        monitor.acquire(stack=static_stack)
        try:
            return func(self, *args, **kwargs)
        finally:
            monitor.release()

    wrapper.__dimmunix_position__ = static_stack
    return wrapper


def wait_on(
    obj: object,
    timeout: Optional[float] = None,
    runtime: Optional["DimmunixRuntime"] = None,
) -> bool:
    """``Object.wait()``: release the object's monitor, park, reacquire.

    Must be called while holding the monitor (inside ``synchronized(obj)``),
    exactly like Java. Returns ``False`` on timeout.
    """
    return _require_runtime(runtime).monitors.condition_for(obj).wait(timeout)


def notify_obj(
    obj: object, runtime: Optional["DimmunixRuntime"] = None
) -> None:
    """``Object.notify()``: wake one thread waiting on the object."""
    _require_runtime(runtime).monitors.condition_for(obj).notify()


def notify_all_obj(
    obj: object, runtime: Optional["DimmunixRuntime"] = None
) -> None:
    """``Object.notifyAll()``: wake all threads waiting on the object."""
    _require_runtime(runtime).monitors.condition_for(obj).notify_all()
