"""The per-process Dimmunix runtime facade.

One :class:`DimmunixRuntime` is one paper-style per-process Dimmunix
instance: it owns the core engine, the blocking adapter, the static-site
registry, and the per-object monitor registry, and it is what
``initDimmunix`` returns in our Zygote analog. The module also manages a
process-default instance for the platform-wide patch and the
``synchronized`` helpers.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Optional

from repro.config import DimmunixConfig
from repro.core.engine import DimmunixCore
from repro.core.events import EventBus
from repro.core.history import History
from repro.core.signature import DeadlockSignature
from repro.core.stats import DimmunixStats
from repro.runtime import _originals
from repro.runtime.callsite import PositionCache, StaticSiteRegistry
from repro.runtime.condition import DimmunixCondition
from repro.runtime.interception import RuntimeAdapter
from repro.runtime.locks import DimmunixLock, DimmunixRLock
from repro.runtime.monitor_registry import MonitorRegistry


class DimmunixRuntime:
    """Deadlock immunity for one process of real ``threading`` code."""

    def __init__(
        self,
        config: Optional[DimmunixConfig] = None,
        history: Optional[History] = None,
        name: str = "process",
        events: Optional[EventBus] = None,
    ) -> None:
        self.name = name
        self.config = config or DimmunixConfig()
        # Events from this runtime are stamped with wall-clock seconds
        # and tagged with the runtime's name, so a session-shared bus can
        # tell adapters apart.
        self.core = DimmunixCore(
            self.config,
            history,
            events=events,
            source=name,
            clock=time.monotonic,
        )
        self.adapter = RuntimeAdapter(self.core)
        self.static_sites = StaticSiteRegistry()
        # The (code, lasti) position cache only resolves depth-1 dynamic
        # positions, so it is wired up exactly when the runtime captures
        # that shape; deeper stacks and static-id capture keep the walk.
        self.position_cache = (
            PositionCache(self.adapter.resolve_position)
            if (
                self.config.enabled
                and self.config.position_cache
                and self.config.stack_depth == 1
                and not self.config.static_ids
            )
            else None
        )
        self.monitors = MonitorRegistry(self)

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------

    def lock(self, name: str = "") -> DimmunixLock:
        """An immunized ``threading.Lock`` replacement."""
        return DimmunixLock(self, name)

    def rlock(self, name: str = "") -> DimmunixRLock:
        """An immunized ``threading.RLock`` replacement."""
        return DimmunixRLock(self, name)

    def condition(self, lock=None) -> DimmunixCondition:
        """An immunized ``threading.Condition`` replacement."""
        return DimmunixCondition(lock, runtime=self)

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    @property
    def history(self) -> History:
        return self.core.history

    @property
    def stats(self) -> DimmunixStats:
        return self.core.stats

    @property
    def events(self) -> EventBus:
        """The typed event stream of this runtime's core."""
        return self.core.events

    def subscribe(self, callback, *, kinds=None, source=None):
        """Subscribe to this runtime's event stream (see EventBus)."""
        return self.core.events.subscribe(callback, kinds=kinds, source=source)

    def unsubscribe(self, subscription) -> bool:
        return self.core.events.unsubscribe(subscription)

    @property
    def detections(self) -> tuple[DeadlockSignature, ...]:
        """Signatures recorded by detection since this runtime started."""
        return self.adapter.detections

    def save_history(self, path: Optional[Path | str] = None) -> Path:
        """Persist the history (defaults to the backing location).

        Routed through the store: a default-target save flushes the
        write-behind batch; an explicit ``path`` snapshots the legacy
        format there. Each persisted batch emits one
        ``HistorySavedEvent`` on this runtime's bus.
        """
        return self.history.persist(
            path
            if path is not None
            else (self.history.location or self.config.history_location())
        )

    def flush_history(self) -> int:
        """Flush pending antibodies to the backing store now."""
        return self.core.flush_history()

    def __repr__(self) -> str:
        snap = self.core.snapshot()
        return (
            f"<DimmunixRuntime {self.name}: {snap.threads} threads, "
            f"{snap.locks} locks, {snap.history_size} signatures>"
        )


# ----------------------------------------------------------------------
# process-default runtime (what the platform-wide patch binds to)
# ----------------------------------------------------------------------

_default_runtime: Optional[DimmunixRuntime] = None
_default_guard = _originals.Lock()


def init_runtime(
    config: Optional[DimmunixConfig] = None,
    history: Optional[History] = None,
    name: str = "main",
) -> DimmunixRuntime:
    """(Re)initialize the process-default runtime — our ``initDimmunix``."""
    global _default_runtime
    with _default_guard:
        _default_runtime = DimmunixRuntime(config, history, name)
        return _default_runtime


def get_runtime() -> DimmunixRuntime:
    """The process-default runtime, created on first use."""
    global _default_runtime
    if _default_runtime is None:
        with _default_guard:
            if _default_runtime is None:
                _default_runtime = DimmunixRuntime(name="main")
    return _default_runtime


def reset_runtime() -> None:
    """Drop the process-default runtime (tests)."""
    global _default_runtime
    with _default_guard:
        _default_runtime = None
