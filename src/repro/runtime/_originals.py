"""Original threading primitives, captured before any monkey-patching.

The platform-wide patch (:mod:`repro.runtime.patch`) replaces
``threading.Lock`` and friends for the whole process — including, if we
were careless, the primitives Dimmunix itself uses for its global lock,
signature conditions, and the raw locks inside the wrappers. That would
recurse. Everything internal therefore allocates through this module,
which snapshots the genuine primitives at import time (before any patch
can have been installed, since ``patch`` imports this module first).
"""

from __future__ import annotations

import _thread
import threading

Lock = threading.Lock
RLock = threading.RLock
Condition = threading.Condition
allocate_lock = _thread.allocate_lock
get_ident = threading.get_ident
