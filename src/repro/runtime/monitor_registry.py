"""Per-object monitors — the thin→fat lock analog.

In Dalvik, an object's lock starts *thin* (a bit-packed integer in the
object header) and is *fattened* into a ``Monitor`` struct the first time
that matters; Android Dimmunix fattens eagerly on ``monitorenter`` because
only a fat lock can carry a RAG node (§4, the ``LW_SHAPE_FAT`` snippet).

Here, an arbitrary Python object plays the role of a Java object: it has
no monitor until the first ``synchronized(obj)`` — at which point the
registry creates one (a reentrant :class:`~repro.runtime.locks.DimmunixRLock`
carrying its RAG node) under a double-checked global fattening lock,
mirroring the paper's code shape exactly.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Optional

from repro.runtime import _originals
from repro.runtime.condition import DimmunixCondition
from repro.runtime.locks import DimmunixRLock

if TYPE_CHECKING:
    from repro.runtime.runtime import DimmunixRuntime


class _MonitorEntry:
    __slots__ = ("monitor", "condition", "weak")

    def __init__(self, monitor: DimmunixRLock) -> None:
        self.monitor = monitor
        self.condition: Optional[DimmunixCondition] = None
        self.weak: Optional[weakref.ref] = None


class MonitorRegistry:
    """Maps live objects to their (lazily created) fat monitors."""

    def __init__(self, runtime: "DimmunixRuntime") -> None:
        self._runtime = runtime
        # The paper's globalLock guarding lock fattening.
        self._fatten_lock = _originals.Lock()
        self._entries: dict[int, _MonitorEntry] = {}

    def monitor_for(self, obj: object) -> DimmunixRLock:
        """The object's monitor, created (fattened) on first use.

        Weakref-able objects are cleaned out of the registry when they are
        collected. Objects that do not support weak references (e.g.
        plain ``object()`` supports them, but ``int`` does not) keep their
        monitor for the life of the process — synchronizing on such values
        is as inadvisable here as locking on interned primitives in Java.
        """
        key = id(obj)
        entry = self._entries.get(key)
        if entry is None:
            with self._fatten_lock:
                # Double-checked, like the thin-lock re-test in §4.
                entry = self._entries.get(key)
                if entry is None:
                    monitor = DimmunixRLock(
                        self._runtime,
                        name=f"monitor:{type(obj).__name__}@{key:#x}",
                    )
                    entry = _MonitorEntry(monitor)
                    try:
                        entry.weak = weakref.ref(obj, self._make_reaper(key))
                    except TypeError:
                        entry.weak = None
                    self._entries[key] = entry
        return entry.monitor

    def condition_for(self, obj: object) -> DimmunixCondition:
        """The wait-set of the object's monitor (for ``Object.wait()``)."""
        key = id(obj)
        self.monitor_for(obj)
        entry = self._entries[key]
        if entry.condition is None:
            with self._fatten_lock:
                if entry.condition is None:
                    entry.condition = DimmunixCondition(entry.monitor)
        return entry.condition

    def _make_reaper(self, key: int):
        registry = self._entries
        runtime = self._runtime

        def _reap(_ref: weakref.ref) -> None:
            entry = registry.pop(key, None)
            if entry is not None and entry.monitor.node is not None:
                runtime.core.lock_destroyed(entry.monitor.node)

        return _reap

    def __len__(self) -> int:
        return len(self._entries)
