"""Instrumentation-based Dimmunix — the §3.1 alternative, built to compare.

The paper contrasts two ways to get Dimmunix under an application:

* **interception** — override the synchronization routines (what Android
  Dimmunix does inside the Dalvik VM, and what :mod:`repro.runtime` does
  to ``threading``): covers everything, cannot be selective;
* **instrumentation** — rewrite the program's synchronization statements
  (what Java Dimmunix does with AspectJ): *can* instrument only the
  statements previously involved in deadlocks, minimizing overhead and
  intrusiveness, but is blind to lock acquisitions that happen inside
  native/runtime code — most importantly the monitor reacquisition inside
  ``Object.wait()`` (§3.2).

This package is the Python analog of the AspectJ path: an AST rewriter
that turns ``with lock:`` statements into guarded statements carrying a
*static* position (the §4 compiler-assigned-id scheme, which
instrumentation gets for free), and a :class:`~repro.instrument.weaver.Weaver`
that compiles and runs modules either fully or selectively instrumented.
Both its strengths (selectivity, no stack walks) and its documented
weakness (wait()-reacquisition blindness) are measured in
``benchmarks/bench_a5_instrumentation.py``.
"""

from repro.instrument.rewriter import InstrumentationReport, instrument_source
from repro.instrument.sites import SyncSite, discover_sites
from repro.instrument.weaver import InstrumentedModule, Weaver

__all__ = [
    "SyncSite",
    "discover_sites",
    "InstrumentationReport",
    "instrument_source",
    "Weaver",
    "InstrumentedModule",
]
