"""Static discovery of synchronization sites in Python source.

Java Dimmunix knows its instrumentation points exactly: every
``monitorenter`` bytecode. Python's closest equivalent is the ``with``
statement; :func:`discover_sites` enumerates every ``with`` item in a
module, and the weaver decides — statically (selective mode) and then at
runtime (is the context object actually a lock?) — which of them become
Dimmunix-guarded synchronizations.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class SyncSite:
    """One candidate synchronization statement.

    ``file``/``line`` form the position key that interoperates with
    signatures recorded by the interception runtime (depth-1 outer call
    stacks use the same ``(file, line)`` identity).
    """

    file: str
    line: int
    expression: str
    function: str = "<module>"

    def key(self) -> tuple[str, int]:
        return (self.file, self.line)

    def position_key(self) -> tuple[tuple[str, int], ...]:
        """The depth-1 :data:`~repro.core.position.PositionKey` form."""
        return ((self.file, self.line),)

    def __str__(self) -> str:
        return f"{self.file}:{self.line} with {self.expression} [{self.function}]"


class _SiteCollector(ast.NodeVisitor):
    """Walks a module recording every ``with`` item and its enclosing
    function (for human-readable reports)."""

    def __init__(self, filename: str) -> None:
        self.filename = filename
        self.sites: list[SyncSite] = []
        self._function_stack: list[str] = ["<module>"]

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            expr = item.context_expr
            self.sites.append(
                SyncSite(
                    file=self.filename,
                    line=expr.lineno,
                    expression=ast.unparse(expr),
                    function=self._function_stack[-1],
                )
            )
        self.generic_visit(node)


def discover_sites(source: str, filename: str = "<instrumented>") -> list[SyncSite]:
    """All candidate synchronization sites in ``source``, in line order."""
    tree = ast.parse(source, filename=filename)
    collector = _SiteCollector(filename)
    collector.visit(tree)
    return sorted(collector.sites, key=lambda site: site.line)


SiteSelector = Callable[[SyncSite], bool]


def select_all(_site: SyncSite) -> bool:
    """Full instrumentation: every with-statement is guarded."""
    return True


def selector_from_history(history) -> SiteSelector:
    """Selective instrumentation (§3.1): only positions already involved
    in a deadlock — i.e. present in the history — are guarded.

    ``history`` is anything with the store contract's
    ``contains_position`` — a :class:`~repro.core.history.History`
    facade or a bare :class:`~repro.core.store.HistoryStore` backend
    (so a weaver can select directly off a shared ``sqlite://`` pool).
    Matching uses the depth-1 position key — an O(1) probe of the
    store's position index — so signatures recorded by the interception
    runtime select the same lines here.
    """

    def _selected(site: SyncSite) -> bool:
        return history.contains_position(site.position_key())

    return _selected


def selector_from_keys(keys) -> SiteSelector:
    """Select sites by explicit ``(file, line)`` pairs (tests, tools)."""
    key_set = set(keys)

    def _selected(site: SyncSite) -> bool:
        return site.key() in key_set

    return _selected


def make_selector(
    history=None, keys=None, default: Optional[SiteSelector] = None
) -> SiteSelector:
    """The selector precedence used by the weaver: explicit keys, then
    history, then ``default`` (full instrumentation when omitted)."""
    if keys is not None:
        return selector_from_keys(keys)
    if history is not None:
        return selector_from_history(history)
    return default if default is not None else select_all
