"""The weaver: compile and run modules with Dimmunix woven in.

One :class:`Weaver` binds rewritten modules to one
:class:`~repro.runtime.runtime.DimmunixRuntime`. It plays the role of
Java Dimmunix's load-time AspectJ weaver:

* ``__dimmunix_guard__(target, k)`` evaluates to a small guard object;
* on ``__enter__``, if ``target`` is a raw ``threading`` lock the guard
  runs the full Request → acquire → Acquired protocol against the
  runtime's core, using the *static* call stack of site ``k`` (no stack
  walk — §4's id scheme); any other context manager passes through
  untouched, including Dimmunix's own primitives (no double
  interception, the same concern §4 raises for NDK pthread hooks);
* on ``__exit__``, Release runs before the raw lock is released.

What the weaver structurally cannot see — and the reason the paper put
Android Dimmunix in the VM instead — is a lock acquisition performed
*inside* runtime code, such as the monitor reacquisition at the end of
``threading.Condition.wait``. The test suite and bench A5 demonstrate
that blindness against the interception runtime on the same program.
"""

from __future__ import annotations

import _thread
import threading
from dataclasses import dataclass
from typing import Any, Optional

from repro.core.callstack import CallStack
from repro.core.node import LockNode
from repro.instrument.rewriter import (
    GUARD_NAME,
    InstrumentationReport,
    instrument_source,
)
from repro.instrument.sites import SiteSelector, make_selector
from repro.runtime import _originals
from repro.runtime.runtime import DimmunixRuntime

_RAW_LOCK_TYPES: tuple[type, ...] = (
    _thread.LockType,
    type(threading.RLock()),
)


@dataclass
class WeaverStats:
    """Runtime counters of one weaver (all guards, all modules)."""

    guarded_entries: int = 0
    passthrough_entries: int = 0
    reentrant_entries: int = 0


class _LockGuard:
    """The context manager substituted around each instrumented site."""

    __slots__ = ("_weaver", "_target", "_site_index", "_mode", "_inner")

    def __init__(self, weaver: "Weaver", target: Any, site_index: int) -> None:
        self._weaver = weaver
        self._target = target
        self._site_index = site_index
        self._mode = ""
        self._inner: Any = None

    def __enter__(self):
        target = self._target
        weaver = self._weaver
        if isinstance(target, _RAW_LOCK_TYPES):
            if hasattr(target, "_is_owned") and target._is_owned():
                # Reentrant acquisition of an owned RLock: free in a Java
                # monitor, free here — no Dimmunix round trip.
                self._mode = "reentrant"
                weaver.stats.reentrant_entries += 1
                return target.acquire()
            self._mode = "lock"
            weaver.stats.guarded_entries += 1
            return weaver._enter_lock(target, self._site_index)
        # Not a lock (a file, a Dimmunix primitive, any context manager):
        # delegate untouched. Dimmunix primitives intercept themselves —
        # guarding them too would double-intercept (§4's NDK concern).
        self._mode = "delegate"
        weaver.stats.passthrough_entries += 1
        self._inner = target
        return target.__enter__()

    def __exit__(self, exc_type, exc_value, traceback):
        if self._mode == "lock":
            return self._weaver._exit_lock(self._target)
        if self._mode == "reentrant":
            self._target.release()
            return False
        return self._inner.__exit__(exc_type, exc_value, traceback)


class InstrumentedModule:
    """A woven module: its namespace, report, and convenience accessors."""

    def __init__(
        self,
        namespace: dict,
        report: InstrumentationReport,
        weaver: "Weaver",
    ) -> None:
        self.namespace = namespace
        self.report = report
        self.weaver = weaver

    def get(self, name: str) -> Any:
        try:
            return self.namespace[name]
        except KeyError:
            raise AttributeError(
                f"instrumented module has no attribute {name!r}"
            ) from None

    def __getattr__(self, name: str) -> Any:
        if name.startswith("__"):
            raise AttributeError(name)
        return self.get(name)


class Weaver:
    """Load-time instrumentation bound to one Dimmunix runtime."""

    def __init__(
        self,
        runtime: Optional[DimmunixRuntime] = None,
        selective: bool = False,
        selector: Optional[SiteSelector] = None,
    ) -> None:
        """``selective=True`` guards only positions already in the
        runtime's history (§3.1's minimal-overhead mode); an explicit
        ``selector`` overrides everything."""
        self.runtime = runtime if runtime is not None else DimmunixRuntime(name="weaver")
        if selector is not None:
            self._selector = selector
        elif selective:
            self._selector = make_selector(history=self.runtime.history)
        else:
            self._selector = make_selector()
        self.stats = WeaverStats()
        self._static_stacks: list[CallStack] = []
        self._lock_nodes: dict[int, LockNode] = {}
        self._registry_guard = _originals.Lock()

    # ------------------------------------------------------------------
    # weaving
    # ------------------------------------------------------------------

    def instrument(
        self, source: str, filename: str = "<instrumented>"
    ) -> InstrumentedModule:
        """Rewrite, compile, and execute ``source``; return the module.

        Static stacks for the new sites are appended to this weaver's
        site table, so one weaver can hold many modules (one process,
        many classes — like one woven Java application).
        """
        base_index = len(self._static_stacks)
        tree, report = instrument_source(source, filename, self._selector)
        for site in report.sites_instrumented:
            self._static_stacks.append(
                CallStack.single(site.file, site.line, site.function)
            )
        code = compile(tree, filename, "exec")
        namespace: dict = {
            GUARD_NAME: self._make_guard_factory(base_index),
            "__name__": filename,
            "__file__": filename,
        }
        exec(code, namespace)
        return InstrumentedModule(namespace, report, self)

    def _make_guard_factory(self, base_index: int):
        def factory(target: Any, site_index: int) -> _LockGuard:
            return _LockGuard(self, target, base_index + site_index)

        return factory

    # ------------------------------------------------------------------
    # the woven monitorenter / monitorexit
    # ------------------------------------------------------------------

    def _node_for(self, lock: Any) -> LockNode:
        key = id(lock)
        node = self._lock_nodes.get(key)
        if node is None:
            with self._registry_guard:
                node = self._lock_nodes.get(key)
                if node is None:
                    node = self.runtime.adapter.new_lock_node(
                        f"woven-lock@{key:#x}"
                    )
                    self._lock_nodes[key] = node
        return node

    def _enter_lock(self, lock: Any, site_index: int) -> bool:
        node = self._node_for(lock)
        stack = self._static_stacks[site_index]
        allowed = self.runtime.adapter.before_acquire(node, stack)
        if not allowed:
            # BREAK policy declined the acquisition; a with-statement has
            # no "would block" outcome, so surface it as the detection.
            from repro.errors import DeadlockDetectedError

            raise DeadlockDetectedError(
                self.runtime.adapter.detections[-1]
                if self.runtime.adapter.detections
                else None,
                message="acquisition denied by detection policy",
            )
        acquired = lock.acquire()
        self.runtime.adapter.after_acquire(node)
        return acquired

    def _exit_lock(self, lock: Any) -> bool:
        node = self._node_for(lock)
        self.runtime.adapter.before_release(node)
        lock.release()
        return False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def tracked_locks(self) -> int:
        return len(self._lock_nodes)

    @property
    def site_count(self) -> int:
        return len(self._static_stacks)

    def forget_lock(self, lock: Any) -> None:
        """Drop a dead lock from the registry (raw locks lack weakrefs)."""
        node = self._lock_nodes.pop(id(lock), None)
        if node is not None:
            self.runtime.core.lock_destroyed(node)
