"""The AST rewrite: ``with lock:`` becomes ``with __dimmunix_guard__(lock, k):``.

The transformation is the Python analog of AspectJ weaving around
``monitorenter``/``monitorexit``:

* each selected ``with`` item's context expression is wrapped in a call
  to the weaver-injected ``__dimmunix_guard__`` factory, carrying the
  site's index ``k``;
* the site table maps ``k`` to a *static* call stack built at weave time
  from the statement's ``(file, line)`` — so instrumented code performs
  **no stack walk at runtime**, which is exactly the compiler-assigned-id
  optimization §4 sketches (instrumentation gets it for free);
* unselected statements are left byte-for-byte alone — the selective mode
  the paper credits with minimizing overhead and intrusiveness.

Whether the guarded object is actually a lock is decided at runtime by
the guard (files, sockets and other context managers pass through
untouched); statically we guard every selected ``with``, the way weaving
guards every monitorenter.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.instrument.sites import SiteSelector, SyncSite, select_all

GUARD_NAME = "__dimmunix_guard__"


@dataclass
class InstrumentationReport:
    """What the rewrite did to one module."""

    filename: str
    sites_found: tuple[SyncSite, ...] = ()
    sites_instrumented: tuple[SyncSite, ...] = ()
    extra: dict = field(default_factory=dict)

    @property
    def selectivity(self) -> float:
        """Fraction of candidate sites actually guarded (1.0 = full)."""
        if not self.sites_found:
            return 0.0
        return len(self.sites_instrumented) / len(self.sites_found)

    def summary(self) -> str:
        return (
            f"{self.filename}: {len(self.sites_instrumented)}/"
            f"{len(self.sites_found)} sites instrumented "
            f"({self.selectivity * 100:.0f}%)"
        )


class _GuardInjector(ast.NodeTransformer):
    def __init__(self, filename: str, selector: SiteSelector) -> None:
        self.filename = filename
        self.selector = selector
        self.found: list[SyncSite] = []
        self.instrumented: list[SyncSite] = []
        self._function_stack: list[str] = ["<module>"]

    def visit_FunctionDef(self, node):
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()
        return node

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_ClassDef = visit_FunctionDef

    def visit_With(self, node: ast.With) -> ast.With:
        self.generic_visit(node)
        new_items = []
        for item in node.items:
            expr = item.context_expr
            site = SyncSite(
                file=self.filename,
                line=expr.lineno,
                expression=ast.unparse(expr),
                function=self._function_stack[-1],
            )
            self.found.append(site)
            if not self.selector(site):
                new_items.append(item)
                continue
            site_index = len(self.instrumented)
            self.instrumented.append(site)
            guard_call = ast.Call(
                func=ast.Name(id=GUARD_NAME, ctx=ast.Load()),
                args=[expr, ast.Constant(value=site_index)],
                keywords=[],
            )
            ast.copy_location(guard_call, expr)
            ast.copy_location(guard_call.func, expr)
            ast.copy_location(guard_call.args[1], expr)
            new_items.append(
                ast.withitem(
                    context_expr=guard_call, optional_vars=item.optional_vars
                )
            )
        node.items = new_items
        return node


def instrument_source(
    source: str,
    filename: str = "<instrumented>",
    selector: SiteSelector = select_all,
) -> tuple[ast.Module, InstrumentationReport]:
    """Parse, rewrite, and report; the caller compiles the returned tree.

    The tree's locations are preserved, so tracebacks and — crucially —
    the static positions recorded in signatures point at the original
    source lines.
    """
    tree = ast.parse(source, filename=filename)
    injector = _GuardInjector(filename, selector)
    tree = injector.visit(tree)
    ast.fix_missing_locations(tree)
    report = InstrumentationReport(
        filename=filename,
        sites_found=tuple(injector.found),
        sites_instrumented=tuple(injector.instrumented),
    )
    return tree, report
