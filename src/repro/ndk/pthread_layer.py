"""The simulated POSIX Threads mutex layer of one VM process.

Two kinds of callers use it, exactly as on Android:

* **native (JNI) code** — the ``NATIVE_LOCK`` / ``NATIVE_UNLOCK``
  instructions; these are the operations §4 says should be intercepted
  "only when native code executes";
* **the VM itself** — every fat Java monitor is backed by a pthread
  mutex. Interception must *not* see that internal use, or every Java
  acquisition is processed twice and attributed to one internal position
  (``InterceptionMode.ALWAYS`` exists precisely to measure that damage).

Mutexes follow POSIX error-checking semantics: relocking an owned mutex
or unlocking someone else's mutex faults the thread (EDEADLK / EPERM),
which keeps broken native code from silently corrupting the model.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.config import InterceptionMode
from repro.core.node import LockNode
from repro.dalvik import instructions as ins
from repro.dalvik.thread import ThreadState, VMThread
from repro.errors import VMError

if TYPE_CHECKING:
    from repro.dalvik.monitor import Monitor
    from repro.dalvik.vm import DalvikVM

# The single program position all VM-internal pthread locking collapses
# onto under naive interception — the analog of libdvm's one lock-call
# site inside dvmLockObject.
VM_INTERNAL_FILE = "<libdvm>"
VM_INTERNAL_LINE = 1


class PthreadError(VMError):
    """EDEADLK / EPERM style misuse of a pthread mutex."""


class PthreadMutex:
    """One ``pthread_mutex_t`` (error-checking type)."""

    __slots__ = ("name", "owner", "entry_queue", "node")

    def __init__(self, name: str, node: Optional[LockNode] = None) -> None:
        self.name = name
        self.owner: Optional[VMThread] = None
        self.entry_queue: deque[VMThread] = deque()
        self.node = node

    def is_free(self) -> bool:
        return self.owner is None

    def __repr__(self) -> str:
        owner = self.owner.name if self.owner else None
        return (
            f"<PthreadMutex {self.name} owner={owner} "
            f"queued={len(self.entry_queue)}>"
        )


class PthreadLib:
    """Per-process pthread layer; the interception point of §4."""

    def __init__(self, vm: "DalvikVM", mode: InterceptionMode) -> None:
        self._vm = vm
        self.mode = mode
        self._mutexes: dict[str, PthreadMutex] = {}
        # Diagnostics for the double-interception experiment.
        self.native_ops = 0
        self.internal_ops = 0
        self.intercepted_native = 0
        self.intercepted_internal = 0

    # ------------------------------------------------------------------
    # mutex registry
    # ------------------------------------------------------------------

    def mutex(self, name: str) -> PthreadMutex:
        mutex = self._mutexes.get(name)
        if mutex is None:
            node = None
            if self._vm.core is not None and self.mode is not InterceptionMode.OFF:
                node = self._vm.core.register_lock(f"pthread:{name}")
            mutex = PthreadMutex(name, node)
            self._mutexes[name] = mutex
        return mutex

    def mutexes(self):
        return self._mutexes.values()

    def _intercepts(self, native_context: bool) -> bool:
        if self._vm.core is None or self.mode is InterceptionMode.OFF:
            return False
        if self.mode is InterceptionMode.ALWAYS:
            return True
        return native_context

    # ------------------------------------------------------------------
    # the native entry points (NATIVE_LOCK / NATIVE_UNLOCK instructions)
    # ------------------------------------------------------------------

    def native_mutex_lock(self, thread: VMThread, instr: ins.NativeLock) -> None:
        vm = self._vm
        name = ins.effective_object(instr, thread.registers)
        mutex = self.mutex(name)
        vm.charge(thread, vm.config.monitor_cost)
        self.native_ops += 1

        if mutex.owner is thread:
            vm.fault_thread(
                thread,
                PthreadError(
                    f"EDEADLK: {thread.name} relocks native mutex {name!r}"
                ),
            )
            return

        if self._intercepts(native_context=True):
            self.intercepted_native += 1
            self._ensure_node(mutex)
            if not vm.ops._dimmunix_admission(thread, mutex):
                return  # parked (yield) or faulted by the policy
        self._acquire_or_block(thread, mutex)

    def native_mutex_unlock(self, thread: VMThread, instr: ins.NativeUnlock) -> None:
        vm = self._vm
        name = ins.effective_object(instr, thread.registers)
        mutex = self._mutexes.get(name)
        vm.charge(thread, vm.config.monitor_cost)
        self.native_ops += 1
        if mutex is None or mutex.owner is not thread:
            vm.fault_thread(
                thread,
                PthreadError(
                    f"EPERM: {thread.name} unlocks un-owned native mutex {name!r}"
                ),
            )
            return
        self._release(thread, mutex, native_context=True)
        thread.pc += 1

    # ------------------------------------------------------------------
    # the VM-internal entry points (Java monitors' backing mutexes)
    # ------------------------------------------------------------------

    def vm_internal_lock(self, thread: VMThread, monitor: "Monitor") -> None:
        """Called by lockMonitor when it takes the monitor's backing
        pthread mutex. A no-op unless the naive ``ALWAYS`` mode is on —
        then the double interception happens, measurably."""
        self.internal_ops += 1
        if self.mode is not InterceptionMode.ALWAYS or self._vm.core is None:
            return
        self.intercepted_internal += 1
        core = self._vm.core
        mutex = self.mutex(f"<backing:{monitor.monitor_id}>")
        self._ensure_node(mutex)
        # All internal acquisitions share one <libdvm> position: the
        # wrapper pathology (§3.2) applied to the entire platform.
        from repro.core.callstack import CallStack

        stack = CallStack.single(
            VM_INTERNAL_FILE, VM_INTERNAL_LINE, "dvmLockObject"
        )
        result = core.request(thread.node, mutex.node, stack)
        # The backing mutex is free by construction here (the monitor
        # grant already serialized ownership), so the verdict is always
        # PROCEED unless a signature at <libdvm> is instantiable — the
        # failure mode this mode exists to demonstrate.
        if result.verdict.value == "proceed" and result.detected is None:
            core.acquired(thread.node, mutex.node)
            mutex.owner = thread

    def vm_internal_unlock(self, thread: VMThread, monitor: "Monitor") -> None:
        self.internal_ops += 1
        if self.mode is not InterceptionMode.ALWAYS or self._vm.core is None:
            return
        mutex = self._mutexes.get(f"<backing:{monitor.monitor_id}>")
        if mutex is None or mutex.owner is not thread:
            return
        core = self._vm.core
        result = core.release(thread.node, mutex.node)
        for signature in result.notify:
            self._vm.wake_signature(signature)
        mutex.owner = None

    # ------------------------------------------------------------------
    # grant machinery (mirrors MonitorOps)
    # ------------------------------------------------------------------

    def _ensure_node(self, mutex: PthreadMutex) -> None:
        if mutex.node is None and self._vm.core is not None:
            mutex.node = self._vm.core.register_lock(f"pthread:{mutex.name}")

    def _acquire_or_block(self, thread: VMThread, mutex: PthreadMutex) -> None:
        if mutex.is_free():
            self._complete_grant(thread, mutex)
        else:
            mutex.entry_queue.append(thread)
            thread.state = ThreadState.BLOCKED
            thread.continuation = ("native-enter", mutex)

    def _complete_grant(self, thread: VMThread, mutex: PthreadMutex) -> None:
        vm = self._vm
        mutex.owner = thread
        thread.sync_count += 1
        vm.note_sync(thread)
        if mutex.node is not None and vm.core is not None:
            if thread.node.requesting is mutex.node:
                vm.core.acquired(thread.node, mutex.node)
        thread.continuation = None
        thread.pc += 1
        thread.state = ThreadState.RUNNABLE

    def grant_next(self, mutex: PthreadMutex) -> None:
        vm = self._vm
        while mutex.entry_queue:
            candidate = mutex.entry_queue.popleft()
            if not candidate.is_live():
                continue
            continuation = candidate.continuation
            assert continuation is not None and continuation[1] is mutex
            self._complete_grant(candidate, mutex)
            vm.enqueue(candidate)
            return

    def _release(
        self, thread: VMThread, mutex: PthreadMutex, native_context: bool
    ) -> None:
        vm = self._vm
        if self._intercepts(native_context) and mutex.node is not None:
            result = vm.core.release(thread.node, mutex.node)
            vm.charge(thread, vm.config.release_base_cost)
            for signature in result.notify:
                vm.wake_signature(signature)
        mutex.owner = None
        self.grant_next(mutex)

    # ------------------------------------------------------------------
    # fault handling
    # ------------------------------------------------------------------

    def release_all_for(self, thread: VMThread) -> None:
        """Unwind a faulted thread's native mutexes (crash hygiene)."""
        for mutex in self._mutexes.values():
            if mutex.owner is thread:
                if (
                    self._vm.core is not None
                    and mutex.node is not None
                    and self.mode is not InterceptionMode.OFF
                ):
                    result = self._vm.core.release(thread.node, mutex.node)
                    for signature in result.notify:
                        self._vm.wake_signature(signature)
                mutex.owner = None
                self.grant_next(mutex)
