"""Native-code (NDK) synchronization and its interception — §4's last mile.

The paper's closing implementation note: *Android Dimmunix does not
handle deadlocks involving native code*. It could, by intercepting the
POSIX Threads synchronization routines — but "this must be done
carefully, because the Dalvik VM already uses this library to implement
the synchronization operations in Java. Therefore, Android OS should
allow Dimmunix to intercept the calls to the POSIX Threads
synchronization routines only when native code executes."

This package builds that missing piece for the substrate VM, with all
three policies so the design point can be measured:

* ``InterceptionMode.OFF`` — the shipped Android Dimmunix: native mutex
  operations are invisible; a JNI-crossing deadlock freezes the process
  undetected (reproduced in the tests and bench A6);
* ``InterceptionMode.NATIVE_ONLY`` — §4's proposal: ``pthread_mutex_*``
  calls are routed through the per-process Dimmunix core *only when
  native code executes*; cross-boundary cycles (Java monitor + native
  mutex) are detected and subsequently avoided like any other deadlock;
* ``InterceptionMode.ALWAYS`` — the naive hook the paper warns against:
  the VM's *own* pthread use (every Java monitor is backed by a pthread
  mutex) is intercepted too. The tests show the damage: every Java
  acquisition is double-counted, and all the VM-internal acquisitions
  collapse onto one ``<libdvm>`` position — the §3.2 wrapper pathology
  at platform scale, ready to serialize the world after one signature.
"""

from repro.ndk.pthread_layer import (
    InterceptionMode,
    PthreadLib,
    PthreadMutex,
    VM_INTERNAL_FILE,
)

__all__ = [
    "InterceptionMode",
    "PthreadLib",
    "PthreadMutex",
    "VM_INTERNAL_FILE",
]
