"""JNI-boundary deadlock scenarios for the native-interception experiment.

The canonical cross-boundary inversion: a Java thread calls into native
code while holding a Java monitor; another thread holds the native mutex
and calls back into Java::

    Thread 1 (Java -> JNI):          Thread 2 (JNI -> Java):
        synchronized(gate) {             pthread_mutex_lock(&buf);
            nativeFill();  // locks buf      callJava();  // enters gate
        }                                pthread_mutex_unlock(&buf);

Shipped Android Dimmunix never sees ``buf`` — the freeze is undetected
(the §4 limitation). With ``InterceptionMode.NATIVE_ONLY`` the cycle
spans a monitor node and a pthread node in the same per-process RAG, and
the standard detect-once / avoid-forever lifecycle applies.
"""

from __future__ import annotations

from typing import Optional

from repro.dalvik.program import Program, ProgramBuilder
from repro.dalvik.vm import DalvikVM, VMConfig
from repro.ndk.pthread_layer import InterceptionMode

JAVA_FILE = "com/example/media/Decoder.java"
JNI_FILE = "decoder_jni.cpp"

JAVA_MONITOR_LINE = 30   # synchronized(gate) in Java code
NATIVE_LOCK_LINE = 81    # pthread_mutex_lock(&buf) in JNI code
CALLBACK_LINE = 95       # the JNI->Java upcall entering gate


def build_jni_inversion_programs() -> tuple[Program, Program]:
    """The two threads above, as substrate programs."""
    java_first = ProgramBuilder(JAVA_FILE)
    java_first.monitor_enter("gate", line=JAVA_MONITOR_LINE)
    java_first.compute(5, line=JAVA_MONITOR_LINE + 1)
    java_first.source(JNI_FILE)
    java_first.native_lock("buf", line=NATIVE_LOCK_LINE + 2)
    java_first.compute(3)
    java_first.native_unlock("buf", line=NATIVE_LOCK_LINE + 4)
    java_first.source(JAVA_FILE)
    java_first.monitor_exit("gate", line=JAVA_MONITOR_LINE + 6)
    java_first.halt()

    native_first = ProgramBuilder(JNI_FILE)
    native_first.native_lock("buf", line=NATIVE_LOCK_LINE)
    native_first.compute(5, line=NATIVE_LOCK_LINE + 1)
    native_first.source(JAVA_FILE)
    native_first.monitor_enter("gate", line=CALLBACK_LINE)
    native_first.compute(3)
    native_first.monitor_exit("gate", line=CALLBACK_LINE + 2)
    native_first.source(JNI_FILE)
    native_first.native_unlock("buf", line=NATIVE_LOCK_LINE + 5)
    native_first.halt()

    return java_first.build(), native_first.build()


def run_jni_inversion(
    mode: InterceptionMode,
    history=None,
    vm_config: Optional[VMConfig] = None,
    max_ticks: int = 100_000,
) -> DalvikVM:
    """Run the crossing scenario under the given interception mode."""
    base = vm_config or VMConfig()
    config = base.evolve(native_interception=mode)
    vm = DalvikVM(config, history=history, name=f"jni-{mode.value}")
    java_program, native_program = build_jni_inversion_programs()
    vm.spawn(java_program, "java-thread")
    vm.spawn(native_program, "native-thread")
    vm.run(max_ticks=max_ticks)
    return vm
