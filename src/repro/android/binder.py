"""A minimal binder model: transaction streams on worker threads.

Real Android delivers cross-process calls to a pool of binder threads
inside the callee process; the deadlock in the paper happens in
``system_server`` between one such binder thread (delivering
``enqueueNotificationWithTag`` from an app) and the status-bar handler
thread. We model exactly that: a :class:`BinderThreadPool` spawns worker
threads whose programs execute a stream of incoming transactions — plain
calls into service functions linked into the worker's program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.dalvik.program import Program, ProgramBuilder
from repro.dalvik.vm import DalvikVM
from repro.dalvik.thread import VMThread

BINDER_FILE = "android/os/Binder.java"

ServiceEmitter = Callable[[ProgramBuilder], None]


@dataclass(frozen=True)
class BinderTransaction:
    """One incoming call stream: service function, repetition, timing.

    ``initial_delay_ticks`` models when the first call arrives relative
    to process start — the knob that lines incoming binder traffic up
    with UI activity (e.g. a notification arriving mid-expansion, the
    paper's trigger).
    """

    function: str
    count: int = 1
    gap_ticks: int = 5
    initial_delay_ticks: int = 0


def build_worker_program(
    transactions: Sequence[BinderTransaction],
    service_code: Sequence[ServiceEmitter],
) -> Program:
    """A binder worker: execute each transaction stream, then exit.

    ``service_code`` emitters must define every function the transactions
    name (plus their transitive callees).
    """
    builder = ProgramBuilder(BINDER_FILE)
    for index, txn in enumerate(transactions):
        reg = f"txn{index}"
        label = f"txn{index}.loop"
        if txn.initial_delay_ticks > 0:
            builder.sleep(txn.initial_delay_ticks)
        builder.set_reg(reg, txn.count)
        builder.label(label)
        builder.call(txn.function)
        builder.compute(txn.gap_ticks)
        builder.loop_dec(reg, label)
    builder.halt()
    for emit in service_code:
        emit(builder)
    return builder.build()


class BinderThreadPool:
    """Spawns binder worker threads into a process VM."""

    def __init__(self, vm: DalvikVM, name_prefix: str = "Binder") -> None:
        self._vm = vm
        self._prefix = name_prefix
        self._workers: list[VMThread] = []

    def submit(
        self,
        transactions: Sequence[BinderTransaction],
        service_code: Sequence[ServiceEmitter],
    ) -> VMThread:
        """Create one worker thread executing ``transactions``."""
        program = build_worker_program(transactions, service_code)
        worker = self._vm.spawn(
            program, name=f"{self._prefix}-{len(self._workers) + 1}"
        )
        self._workers.append(worker)
        return worker

    @property
    def workers(self) -> tuple[VMThread, ...]:
        return tuple(self._workers)
