"""StatusBarService — the other half of Android issue 7986.

The status bar serializes its state behind a monitor (modeled as
``SBS.mLock``). Two paths matter:

* ``updateNotification`` — called *by* the notification manager (which
  already holds ``mNotificationList``) to refresh the icon; takes
  ``SBS.mLock``.
* ``StatusBarService$H.handleMessage`` — the handler thread reacting to
  the user expanding the status bar; takes ``SBS.mLock`` and then calls
  back into the notification manager (``onPanelRevealed``), which takes
  ``mNotificationList``.

Opposite acquisition orders on the same two monitors: the deadlock that
froze the phone's whole interface.
"""

from __future__ import annotations

from repro.dalvik.program import ProgramBuilder

FILE = "com/android/server/status/StatusBarService.java"

LOCK = "SBS.mLock"
LINE_UPDATE_SYNC = 412       # synchronized in updateNotification
LINE_UPDATE_EXIT = 425
LINE_HANDLE_SYNC = 156       # synchronized in StatusBarService$H.handleMessage
LINE_CALL_NMS = 171          # mNotificationCallbacks.onPanelRevealed()
LINE_HANDLE_EXIT = 178
LINE_RENDER_SYNC = 233       # UI thread repaint path
LINE_RENDER_EXIT = 238

FN_UPDATE = "SBS.updateNotification"
FN_HANDLE_MESSAGE = "SBS$H.handleMessage"
FN_RENDER = "SBS.performLayout"


class StatusBarService:
    """Program-fragment factory for the status bar service."""

    lock_object = LOCK

    @staticmethod
    def emit_update_notification(builder: ProgramBuilder) -> None:
        """``updateNotification``: takes SBS.mLock (caller holds NMS lock)."""
        builder.function(FN_UPDATE)
        builder.source(FILE)
        builder.monitor_enter(LOCK, line=LINE_UPDATE_SYNC)
        builder.compute(2, line=LINE_UPDATE_SYNC + 3)
        builder.monitor_exit(LOCK, line=LINE_UPDATE_EXIT)
        builder.ret()

    @staticmethod
    def emit_handle_message(builder: ProgramBuilder) -> None:
        """``StatusBarService$H.handleMessage``: SBS lock → NMS callback.

        Requires ``NotificationManagerService.emit_on_panel_revealed`` in
        the same program.
        """
        builder.function(FN_HANDLE_MESSAGE)
        builder.source(FILE)
        builder.monitor_enter(LOCK, line=LINE_HANDLE_SYNC)
        builder.compute(3, line=LINE_HANDLE_SYNC + 4)
        builder.call("NMS.onPanelRevealed", line=LINE_CALL_NMS)
        builder.compute(1, line=LINE_HANDLE_EXIT - 1)
        builder.monitor_exit(LOCK, line=LINE_HANDLE_EXIT)
        builder.ret()

    @staticmethod
    def emit_render_pass(builder: ProgramBuilder) -> None:
        """One UI repaint: briefly takes SBS.mLock.

        This is what hangs the whole interface once the two services
        deadlock — the UI thread blocks behind ``SBS.mLock`` forever.
        """
        builder.function(FN_RENDER)
        builder.source(FILE)
        builder.monitor_enter(LOCK, line=LINE_RENDER_SYNC)
        builder.compute(1, line=LINE_RENDER_SYNC + 2)
        builder.monitor_exit(LOCK, line=LINE_RENDER_EXIT)
        builder.ret()
