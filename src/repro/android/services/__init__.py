"""Simulated Android system services.

Each service is a program-fragment factory: it emits its methods (as VM
program functions) into a thread's :class:`~repro.dalvik.program.ProgramBuilder`,
with the lock objects and source positions of the real Android 2.2 code
the paper reproduces its deadlock from.
"""

from repro.android.services.notification_manager import (
    NotificationManagerService,
)
from repro.android.services.status_bar import StatusBarService

__all__ = ["NotificationManagerService", "StatusBarService"]
