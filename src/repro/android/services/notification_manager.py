"""NotificationManagerService — one half of Android issue 7986.

The real service guards its notification list with a monitor
(``mNotificationList``). ``enqueueNotificationWithTag`` takes that
monitor and then calls *into* the status bar service (to post/update the
icon) while still holding it. The reverse call direction exists too:
status-bar UI events call back into the notification manager
(``onPanelRevealed`` / click handling), which also takes
``mNotificationList`` — the classic lock-order inversion the paper
reproduced on the Nexus One.
"""

from __future__ import annotations

from repro.dalvik.program import ProgramBuilder

FILE = "com/android/server/NotificationManagerService.java"

# Lock object and source positions (line numbers chosen to mirror the
# Android 2.2 source layout; what matters is that they are stable).
LOCK = "NMS.mNotificationList"
LINE_ENQUEUE_SYNC = 847      # synchronized (mNotificationList) { ... }
LINE_CALL_STATUSBAR = 861    # mStatusBar.updateNotification(...)
LINE_ENQUEUE_EXIT = 869
LINE_ON_PANEL_SYNC = 873     # synchronized (mNotificationList) in callback
LINE_ON_PANEL_EXIT = 880

FN_ENQUEUE = "NMS.enqueueNotificationWithTag"
FN_ON_PANEL_REVEALED = "NMS.onPanelRevealed"


class NotificationManagerService:
    """Program-fragment factory for the notification manager."""

    lock_object = LOCK

    @staticmethod
    def emit_enqueue_notification(builder: ProgramBuilder) -> None:
        """``enqueueNotificationWithTag``: NMS lock → StatusBar call.

        Requires ``StatusBarService.emit_update_notification`` to be
        linked into the same program (it defines ``SBS.updateNotification``).
        """
        builder.function(FN_ENQUEUE)
        builder.source(FILE)
        builder.monitor_enter(LOCK, line=LINE_ENQUEUE_SYNC)
        builder.compute(3, line=LINE_ENQUEUE_SYNC + 2)
        builder.call("SBS.updateNotification", line=LINE_CALL_STATUSBAR)
        builder.compute(1, line=LINE_ENQUEUE_EXIT - 1)
        builder.monitor_exit(LOCK, line=LINE_ENQUEUE_EXIT)
        builder.ret()

    @staticmethod
    def emit_on_panel_revealed(builder: ProgramBuilder) -> None:
        """The callback the status bar makes while holding its own lock."""
        builder.function(FN_ON_PANEL_REVEALED)
        builder.source(FILE)
        builder.monitor_enter(LOCK, line=LINE_ON_PANEL_SYNC)
        builder.compute(2, line=LINE_ON_PANEL_SYNC + 2)
        builder.monitor_exit(LOCK, line=LINE_ON_PANEL_EXIT)
        builder.ret()
