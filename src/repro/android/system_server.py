"""The simulated ``system_server`` process.

Hosts the two services of the paper's case study and the three threads
whose interleaving produces the freeze:

* a binder worker delivering ``enqueueNotificationWithTag`` calls (an app
  is posting notifications),
* the ``StatusBarService$H`` handler thread, driven by a Looper message
  queue, reacting to status-bar expansion,
* the UI thread, which posts the expansion messages and repaints — and
  whose blocking is what "froze the entire phone's interface".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.android import looper
from repro.android.binder import BinderThreadPool, BinderTransaction
from repro.android.services import notification_manager as nms
from repro.android.services import status_bar as sbs
from repro.dalvik.program import ProgramBuilder
from repro.dalvik.thread import ThreadState, VMThread
from repro.dalvik.vm import DalvikVM

UI_FILE = "com/android/server/WindowManagerService.java"
STATUS_BAR_QUEUE = looper.MessageQueue("SBS")


def _emit_notification_stack(builder: ProgramBuilder) -> None:
    nms.NotificationManagerService.emit_enqueue_notification(builder)
    sbs.StatusBarService.emit_update_notification(builder)


def _emit_statusbar_stack(builder: ProgramBuilder) -> None:
    sbs.StatusBarService.emit_handle_message(builder)
    nms.NotificationManagerService.emit_on_panel_revealed(builder)


def build_handler_program(expands: int) -> "ProgramBuilder":
    """The StatusBarService$H looper thread."""
    builder = ProgramBuilder(looper.LOOPER_FILE)
    looper.emit_message_loop(
        builder,
        STATUS_BAR_QUEUE,
        sbs.FN_HANDLE_MESSAGE,
        messages_to_handle=expands,
    )
    builder.halt()
    _emit_statusbar_stack(builder)
    return builder


def build_ui_program(expands: int, renders: int) -> "ProgramBuilder":
    """The UI thread: post expand messages, repaint in between."""
    builder = ProgramBuilder(UI_FILE)
    builder.set_reg("expands", expands, line=50)
    builder.label("ui.loop")
    looper.emit_send_message(builder, STATUS_BAR_QUEUE, line_base=60)
    builder.compute(2, line=70)
    builder.call(sbs.FN_RENDER, line=72)
    builder.compute(4, line=74)
    builder.loop_dec("expands", "ui.loop", line=76)
    builder.set_reg("renders", renders, line=80)
    builder.label("ui.render")
    builder.call(sbs.FN_RENDER, line=82)
    builder.compute(6, line=84)
    builder.loop_dec("renders", "ui.render", line=86)
    builder.halt()
    sbs.StatusBarService.emit_render_pass(builder)
    return builder


@dataclass
class SystemServer:
    """The composed process, with handles to its interesting threads."""

    vm: DalvikVM
    binder_worker: VMThread
    handler_thread: VMThread
    ui_thread: VMThread

    @property
    def ui_blocked(self) -> bool:
        """True when the interface is hung (the paper's freeze symptom)."""
        return self.ui_thread.state in (
            ThreadState.BLOCKED,
            ThreadState.YIELDING,
        )

    def thread_states(self) -> dict[str, str]:
        return {t.name: t.state.value for t in self.vm.threads}


def start_system_server(
    vm: DalvikVM,
    notifications: int = 4,
    expands: int = 4,
    renders: int = 3,
    binder_delay: int = 10,
) -> SystemServer:
    """Populate ``vm`` with the case-study threads.

    ``notifications`` is the stream of incoming enqueue calls;
    ``expands`` the number of status-bar expansions the UI posts. The
    deterministic schedule interleaves them; with opposite lock orders on
    ``NMS.mNotificationList`` and ``SBS.mLock`` the vanilla run freezes.
    """
    pool = BinderThreadPool(vm, name_prefix="Binder")
    binder_worker = pool.submit(
        [
            BinderTransaction(
                nms.FN_ENQUEUE,
                count=notifications,
                gap_ticks=4,
                initial_delay_ticks=binder_delay,
            )
        ],
        [_emit_notification_stack],
    )
    handler_thread = vm.spawn(
        build_handler_program(expands).build(), name="StatusBarService$H"
    )
    ui_thread = vm.spawn(
        build_ui_program(expands, renders).build(), name="android.ui"
    )
    return SystemServer(
        vm=vm,
        binder_worker=binder_worker,
        handler_thread=handler_thread,
        ui_thread=ui_thread,
    )
