"""Memory-overhead accounting — experiment E2 and Table 1's memory columns.

What Dimmunix adds to a process, per §4/§5:

* a fat ``Monitor`` for every locked object (vanilla Dalvik keeps
  uncontended locks thin — our VM reproduces both behaviours),
* a RAG node per thread and per monitor,
* a pre-allocated stack buffer per thread,
* interned ``Position`` objects and their queue cells,
* the persistent history.

The app's own footprint (``AppSpec.vanilla_mb``) is the paper's measured
vanilla number; the Dimmunix number is that plus the *measured* structure
growth of the simulated process — so the overhead column is computed, not
assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.android.apps.base import AppSpec
from repro.android.apps.workload import AppRunResult

MB = 1024 * 1024

# Nexus One (the paper's device).
DEVICE_RAM_MB = 512.0
# Resident system share besides the 8 profiled apps (kernel, system_server,
# surfaceflinger, radio, zygote, caches): sized so the vanilla total lands
# at the paper's 50% of device RAM.
OS_BASE_MB = 97.5

# Per-structure byte estimates for system processes we do not simulate
# individually (matching DimmunixCore.memory_footprint's constants; the
# signature-side estimate lives with the history store —
# HistoryStore.approximate_bytes — so simulated and modelled processes
# share one accounting).
_MONITOR_AND_NODE_BYTES = 64 + 120
_PER_THREAD_BYTES = 200 + 256


@dataclass(frozen=True)
class AppMemoryRow:
    """One Table-1 row: consumption with and without Dimmunix."""

    name: str
    threads: int
    peak_syncs_per_sec: float
    vanilla_mb: float
    dimmunix_mb: float

    @property
    def overhead_fraction(self) -> float:
        if self.vanilla_mb == 0:
            return 0.0
        return (self.dimmunix_mb - self.vanilla_mb) / self.vanilla_mb

    @property
    def overhead_pct(self) -> float:
        return self.overhead_fraction * 100.0


def measure_pair(
    spec: AppSpec,
    with_dimmunix: AppRunResult,
    without: AppRunResult,
) -> AppMemoryRow:
    """Build the Table-1 row from a matched pair of app runs.

    ``dimmunix_mb`` = the paper's vanilla baseline + the simulated
    process's measured growth: extra heap bytes (eager monitor fattening)
    plus the engine's structure footprint.
    """
    assert with_dimmunix.vm.core is not None
    heap_delta = (
        with_dimmunix.vm.heap.allocated_bytes
        - without.vm.heap.allocated_bytes
    )
    engine_bytes = with_dimmunix.vm.core.memory_footprint().bytes_total
    dimmunix_mb = spec.vanilla_mb + max(heap_delta, 0) / MB + engine_bytes / MB
    return AppMemoryRow(
        name=spec.name,
        threads=spec.threads,
        peak_syncs_per_sec=without.peak_syncs_per_sec,
        vanilla_mb=spec.vanilla_mb,
        dimmunix_mb=dimmunix_mb,
    )


def estimated_system_process_overhead_bytes(
    threads: int = 28, lock_objects: int = 1400, positions: int = 120
) -> int:
    """Dimmunix growth of one un-simulated system process.

    The phone runs a dozen-plus system processes besides the profiled
    apps (system_server, media, radio, inputmethod, ...); platform-wide
    immunity pays the same structure costs there. This uses the same
    per-structure constants as ``DimmunixCore.memory_footprint``.
    """
    return (
        lock_objects * _MONITOR_AND_NODE_BYTES
        + threads * _PER_THREAD_BYTES
        + positions * 160
    )


@dataclass(frozen=True)
class SystemMemoryReport:
    """Device-wide consumption, the paper's "52% vs 50%" comparison."""

    rows: tuple[AppMemoryRow, ...]
    os_base_mb: float
    system_overhead_mb: float
    device_mb: float

    @property
    def vanilla_total_mb(self) -> float:
        return self.os_base_mb + sum(row.vanilla_mb for row in self.rows)

    @property
    def dimmunix_total_mb(self) -> float:
        return (
            self.os_base_mb
            + self.system_overhead_mb
            + sum(row.dimmunix_mb for row in self.rows)
        )

    @property
    def vanilla_pct(self) -> float:
        return self.vanilla_total_mb / self.device_mb * 100.0

    @property
    def dimmunix_pct(self) -> float:
        return self.dimmunix_total_mb / self.device_mb * 100.0

    @property
    def overall_overhead_pct(self) -> float:
        if self.vanilla_total_mb == 0:
            return 0.0
        return (
            (self.dimmunix_total_mb - self.vanilla_total_mb)
            / self.vanilla_total_mb
            * 100.0
        )


def system_report(
    rows: Sequence[AppMemoryRow],
    system_process_count: int = 14,
    os_base_mb: float = OS_BASE_MB,
    device_mb: float = DEVICE_RAM_MB,
    system_overhead_mb: Optional[float] = None,
) -> SystemMemoryReport:
    """Device-wide report from per-app rows plus modelled system growth."""
    if system_overhead_mb is None:
        system_overhead_mb = (
            system_process_count
            * estimated_system_process_overhead_bytes()
            / MB
        )
    return SystemMemoryReport(
        rows=tuple(rows),
        os_base_mb=os_base_mb,
        system_overhead_mb=system_overhead_mb,
        device_mb=device_mb,
    )
