"""The simulated Android platform.

System services with the issue-7986 deadlock, the Looper/Handler/binder
substrates they run on, the eight Table-1 applications as calibrated
synthetic workloads, and the device-wide memory and power models — the
evaluation surface of the paper, reproduced on the Dalvik substrate.
"""

from repro.android.binder import BinderThreadPool, BinderTransaction
from repro.android.issue7986 import (
    Issue7986Result,
    demonstrate_immunity,
    run_once,
    run_vanilla,
)
from repro.android.looper import MessageQueue, emit_message_loop, emit_send_message
from repro.android.memory import (
    AppMemoryRow,
    SystemMemoryReport,
    measure_pair,
    system_report,
)
from repro.android.phone import (
    PhoneSimulator,
    POWER_PROFILE,
    run_table1_phone_pair,
)
from repro.android.power import (
    PowerAttribution,
    PowerModel,
    attribute,
)
from repro.android.system_server import SystemServer, start_system_server

__all__ = [
    "BinderThreadPool",
    "BinderTransaction",
    "MessageQueue",
    "emit_message_loop",
    "emit_send_message",
    "Issue7986Result",
    "demonstrate_immunity",
    "run_once",
    "run_vanilla",
    "SystemServer",
    "start_system_server",
    "AppMemoryRow",
    "SystemMemoryReport",
    "measure_pair",
    "system_report",
    "PowerAttribution",
    "PowerModel",
    "attribute",
    "PhoneSimulator",
    "POWER_PROFILE",
    "run_table1_phone_pair",
]
