"""Power accounting — experiment E3.

Android's battery screen attributes consumption per subsystem; the paper
reports that "Android applications and the OS" account for 14 % of the
power with and without Dimmunix — i.e. the 4–5 % CPU overhead is
invisible at attribution granularity, because display and radio dominate.

The model here is the standard linear phone power model: CPU draws
``cpu_active_mw`` while executing and ``cpu_idle_mw`` otherwise, while
the rest of the device (display, radio, GPS — unaffected by Dimmunix)
draws a constant baseline. Attribution is CPU energy over total energy,
rounded to whole percent exactly as the battery UI rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

# Defaults approximating a 2010-class handset under interactive use.
CPU_ACTIVE_MW = 400.0
CPU_IDLE_MW = 8.0
BASELINE_MW = 1250.0  # display + radio + rest of the device


@dataclass(frozen=True)
class PowerModel:
    cpu_active_mw: float = CPU_ACTIVE_MW
    cpu_idle_mw: float = CPU_IDLE_MW
    baseline_mw: float = BASELINE_MW

    def cpu_energy_mj(self, busy_seconds: float, wall_seconds: float) -> float:
        idle_seconds = max(wall_seconds - busy_seconds, 0.0)
        return (
            busy_seconds * self.cpu_active_mw
            + idle_seconds * self.cpu_idle_mw
        )

    def total_energy_mj(self, busy_seconds: float, wall_seconds: float) -> float:
        return (
            self.cpu_energy_mj(busy_seconds, wall_seconds)
            + wall_seconds * self.baseline_mw
        )


@dataclass(frozen=True)
class PowerAttribution:
    """What the battery screen would show for "apps + OS"."""

    busy_seconds: float
    wall_seconds: float
    cpu_energy_mj: float
    total_energy_mj: float

    @property
    def apps_fraction(self) -> float:
        if self.total_energy_mj == 0:
            return 0.0
        return self.cpu_energy_mj / self.total_energy_mj

    @property
    def apps_percent(self) -> int:
        """Rounded to whole percent, as the Android battery UI reports."""
        return round(self.apps_fraction * 100)

    @property
    def duty_cycle(self) -> float:
        if self.wall_seconds == 0:
            return 0.0
        return self.busy_seconds / self.wall_seconds


def attribute(
    busy_ticks: int,
    wall_ticks: int,
    ticks_per_second: int,
    model: PowerModel = PowerModel(),
) -> PowerAttribution:
    """Power attribution for one measured run."""
    busy_seconds = busy_ticks / ticks_per_second
    wall_seconds = wall_ticks / ticks_per_second
    return PowerAttribution(
        busy_seconds=busy_seconds,
        wall_seconds=wall_seconds,
        cpu_energy_mj=model.cpu_energy_mj(busy_seconds, wall_seconds),
        total_energy_mj=model.total_energy_mj(busy_seconds, wall_seconds),
    )
