"""The phone simulator — the Dimmunix-enabled (or vanilla) device.

One :class:`PhoneSimulator` is one flashed image: a Zygote with a shared
VM cost model and (when immunized) a persistent history directory, from
which every app and system process is forked with its own Dimmunix
instance — the architecture of Figure 1. Benchmarks create two phones
(immunized and vanilla) and run identical workloads on both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.android.apps.base import AppSpec, Phase, STANDARD_PROFILE, build_worker_program
from repro.android.apps.workload import (
    AppRunResult,
    PEAK_WINDOW_SECONDS,
    TABLE1_VM_CONFIG,
    run_app,
)
from repro.android.memory import AppMemoryRow, SystemMemoryReport, measure_pair, system_report
from repro.android.power import PowerAttribution, PowerModel, attribute
from repro.analysis.profiler import SyncProfiler
from repro.dalvik.vm import DalvikVM, VMConfig
from repro.dalvik.zygote import Zygote

# Bursty interactive usage for the power experiment: ~48% CPU duty cycle.
POWER_PROFILE: tuple[Phase, ...] = (
    Phase(seconds=1.5, intensity=1.0),
    Phase(seconds=1.6, intensity=0.0),
    Phase(seconds=1.5, intensity=1.0),
    Phase(seconds=1.7, intensity=0.0),
)


@dataclass
class PhoneSimulator:
    """A simulated Nexus One running one OS image."""

    immunized: bool = True
    history_dir: Optional[Path | str] = None
    vm_config: VMConfig = field(
        default_factory=lambda: TABLE1_VM_CONFIG
    )
    _app_results: dict[str, AppRunResult] = field(default_factory=dict)

    def __post_init__(self) -> None:
        config = (
            self.vm_config if self.immunized else self.vm_config.vanilla()
        )
        self.zygote = Zygote(config, history_dir=self.history_dir)

    # ------------------------------------------------------------------
    # running workloads
    # ------------------------------------------------------------------

    def launch_app(
        self,
        spec: AppSpec,
        phases: Sequence[Phase] = STANDARD_PROFILE,
        peak_window_seconds: float = PEAK_WINDOW_SECONDS,
    ) -> AppRunResult:
        """Fork the app's process and run its workload to completion."""
        result = run_app(
            spec,
            vm_config=self.zygote.vm_config,
            dimmunix=self.immunized,
            phases=phases,
            peak_window_seconds=peak_window_seconds,
        )
        self._app_results[spec.name] = result
        return result

    def results(self) -> dict[str, AppRunResult]:
        return dict(self._app_results)

    # ------------------------------------------------------------------
    # device-wide reports
    # ------------------------------------------------------------------

    def power_attribution(
        self, model: PowerModel = PowerModel()
    ) -> PowerAttribution:
        """Battery-screen attribution over every app run so far."""
        busy = sum(r.busy_ticks for r in self._app_results.values())
        wall = sum(r.wall_ticks for r in self._app_results.values())
        return attribute(
            busy, wall, self.zygote.vm_config.ticks_per_second, model
        )


def run_table1_phone_pair(
    specs: Sequence[AppSpec],
    vm_config: Optional[VMConfig] = None,
    phases: Sequence[Phase] = STANDARD_PROFILE,
) -> tuple[list[AppMemoryRow], SystemMemoryReport, PhoneSimulator, PhoneSimulator]:
    """Run the Table-1 workload on an immunized and a vanilla phone.

    Returns the per-app memory rows, the device-wide report, and the two
    phones (whose per-app results carry throughput and power data).
    """
    config = vm_config or TABLE1_VM_CONFIG
    immunized = PhoneSimulator(immunized=True, vm_config=config)
    vanilla = PhoneSimulator(immunized=False, vm_config=config)
    rows: list[AppMemoryRow] = []
    for spec in specs:
        with_dimmunix = immunized.launch_app(spec, phases=phases)
        without = vanilla.launch_app(spec, phases=phases)
        rows.append(measure_pair(spec, with_dimmunix, without))
    return rows, system_report(rows), immunized, vanilla
