"""Android issue 7986 — the paper's case study (E4).

One thread issues a notification while another expands the status bar;
``NotificationManagerService.enqueueNotificationWithTag`` and
``StatusBarService$H.handleMessage`` take the services' two monitors in
opposite orders, and the whole interface freezes.

:func:`run_once` executes the scenario in a fresh ``system_server``
process; :func:`demonstrate_immunity` runs the full paper story —
freeze once, persist the signature, "reboot", and verify the deadlock
never recurs — returning both runs for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.android.system_server import SystemServer, start_system_server
from repro.core.signature import DeadlockSignature
from repro.dalvik.vm import DalvikVM, VMConfig, VMRunResult
from repro.dalvik.zygote import Zygote

PROCESS_NAME = "system_server"


@dataclass
class Issue7986Result:
    """Everything a bench or test needs to assert the story."""

    run: VMRunResult
    server: SystemServer
    ui_blocked: bool
    detections: tuple[DeadlockSignature, ...]
    yields: int

    @property
    def frozen(self) -> bool:
        return self.run.frozen

    @property
    def completed(self) -> bool:
        return self.run.status == "completed"

    def summary(self) -> dict:
        return {
            "status": self.run.status,
            "ui_blocked": self.ui_blocked,
            "detections": len(self.detections),
            "yields": self.yields,
            "syncs": self.run.syncs,
            "ticks": self.run.ticks,
        }


def run_once(
    vm: DalvikVM,
    notifications: int = 4,
    expands: int = 4,
    renders: int = 3,
    max_ticks: Optional[int] = 200_000,
) -> Issue7986Result:
    """Run the scenario once in the given process VM."""
    server = start_system_server(
        vm, notifications=notifications, expands=expands, renders=renders
    )
    result = vm.run(max_ticks=max_ticks)
    yields = vm.core.stats.yields if vm.core is not None else 0
    return Issue7986Result(
        run=result,
        server=server,
        ui_blocked=server.ui_blocked,
        detections=result.detections,
        yields=yields,
    )


def demonstrate_immunity(
    history_dir: Path | str,
    vm_config: Optional[VMConfig] = None,
    seed: int = 0,
    notifications: int = 4,
    expands: int = 4,
    backend: str = "jsonl",
) -> tuple[Issue7986Result, Issue7986Result]:
    """The paper's §5 story, end to end.

    Boot 1 freezes on the deadlock; Dimmunix detects it and persists the
    signature (the history store survives the frozen process — the
    write-behind persister flushes it the moment the freeze is
    observed). Boot 2 — a fresh fork of ``system_server`` loading the
    same history — runs the identical workload to completion, avoiding
    the deadlock with no user intervention. ``backend`` picks the
    history store (``"jsonl"`` or ``"sqlite"``); the story holds on
    either.
    """
    zygote = Zygote(
        vm_config or VMConfig(), history_dir=history_dir, backend=backend
    )

    first_vm = zygote.fork(PROCESS_NAME, seed=seed)
    first = run_once(
        first_vm, notifications=notifications, expands=expands
    )

    # "After rebooting the phone": a new process, same persistent history.
    second_vm = zygote.fork(PROCESS_NAME, seed=seed)
    second = run_once(
        second_vm, notifications=notifications, expands=expands
    )
    return first, second


def run_vanilla(
    vm_config: Optional[VMConfig] = None,
    seed: int = 0,
    notifications: int = 4,
    expands: int = 4,
) -> Issue7986Result:
    """The unprotected baseline: same scenario, Dimmunix off."""
    config = (vm_config or VMConfig()).vanilla()
    vm = DalvikVM(config, name=PROCESS_NAME)
    return run_once(vm, notifications=notifications, expands=expands)
