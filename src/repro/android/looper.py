"""Looper / MessageQueue / Handler — Android's message-loop substrate.

Android system services are driven by handler threads: a ``Looper`` pulls
messages off a ``MessageQueue`` and dispatches them to a ``Handler``
(``StatusBarService$H`` in the paper's deadlock is exactly such a
handler). This module emits that machinery as VM program fragments:

* the queue is a monitor-protected depth counter (a ``g:`` global),
* ``send_message`` bumps the depth and notifies the queue monitor,
* the loop waits on the monitor while the queue is empty and calls the
  handler function once per message,

so handler threads block, wake, and synchronize exactly like the Java
original — including taking the queue monitor through Dimmunix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dalvik.program import ProgramBuilder

LOOPER_FILE = "android/os/Looper.java"
HANDLER_FILE = "android/os/Handler.java"


@dataclass(frozen=True)
class MessageQueue:
    """Names binding one queue's monitor object and depth global."""

    name: str

    @property
    def lock_object(self) -> str:
        return f"{self.name}.mQueue"

    @property
    def depth_global(self) -> str:
        return f"g:{self.name}.depth"


def emit_send_message(
    builder: ProgramBuilder,
    queue: MessageQueue,
    line_base: int,
) -> None:
    """Handler.sendMessage: enqueue one message and wake the looper."""
    previous_file = builder._file
    builder.source(HANDLER_FILE)
    builder.monitor_enter(queue.lock_object, line=line_base)
    builder.add_reg(queue.depth_global, 1, line=line_base + 1)
    builder.notify_all(queue.lock_object, line=line_base + 2)
    builder.monitor_exit(queue.lock_object, line=line_base + 3)
    builder.source(previous_file)


def emit_message_loop(
    builder: ProgramBuilder,
    queue: MessageQueue,
    handler_function: str,
    messages_to_handle: Optional[int] = None,
    line_base: int = 120,
) -> None:
    """Looper.loop(): dispatch ``handler_function`` once per message.

    With ``messages_to_handle`` the loop halts after that many dispatches
    (so immunized scenario runs terminate); without it the loop runs until
    the VM's tick limit, like a real looper thread.
    """
    previous_file = builder._file
    builder.source(LOOPER_FILE)
    loop_label = f"{queue.name}.loop"
    check_label = f"{queue.name}.check"
    wait_label = f"{queue.name}.wait"
    done_label = f"{queue.name}.done"
    counter = f"{queue.name}.remaining"

    if messages_to_handle is not None:
        builder.set_reg(counter, messages_to_handle, line=line_base)
    builder.label(loop_label)
    builder.monitor_enter(queue.lock_object, line=line_base + 1)
    builder.label(check_label)
    builder.branch_zero(queue.depth_global, wait_label, line=line_base + 2)
    builder.add_reg(queue.depth_global, -1, line=line_base + 3)
    builder.monitor_exit(queue.lock_object, line=line_base + 4)
    builder.call(handler_function, line=line_base + 5)
    if messages_to_handle is not None:
        builder.loop_dec(counter, loop_label, line=line_base + 6)
        builder.jump(done_label, line=line_base + 7)
    else:
        builder.jump(loop_label, line=line_base + 6)
    builder.label(wait_label)
    builder.wait(queue.lock_object, line=line_base + 8)
    builder.jump(check_label, line=line_base + 9)
    builder.label(done_label)
    builder.source(previous_file)
