"""Running one app's workload in one simulated process.

:func:`run_app` is the measurement primitive behind Table 1, E1, E2 and
E3: it forks a process VM (immunized or vanilla), spawns the app's worker
threads, attaches a sync profiler, runs to completion, and reports the
peak-window throughput alongside the raw VM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.profiler import SyncProfiler
from repro.android.apps.base import (
    AppSpec,
    Phase,
    STANDARD_PROFILE,
    build_worker_program,
)
from repro.core.history import History
from repro.dalvik.vm import DalvikVM, VMConfig, VMRunResult

# The paper selects the best 30 s of several minutes of usage; our
# standard profile is 10 virtual seconds, so the peak window scales 1:10.
PEAK_WINDOW_SECONDS = 3.0

# VM cost model for the Table-1 / microbenchmark experiments: finer tick
# resolution than the scenario default, and a stack-retrieval cost that
# dominates the Dimmunix per-sync cost (3 of 5 ticks), matching §5's
# observation that most overhead comes from dvmGetCallStack.
TABLE1_VM_CONFIG = VMConfig(ticks_per_second=200_000, stack_retrieval_cost=3)


@dataclass
class AppRunResult:
    """Everything measured while running one app in one mode."""

    spec: AppSpec
    vm: DalvikVM
    run: VMRunResult
    profiler: SyncProfiler
    peak_syncs_per_sec: float
    dimmunix_enabled: bool

    @property
    def busy_ticks(self) -> int:
        return sum(thread.cpu_ticks for thread in self.vm.threads)

    @property
    def wall_ticks(self) -> int:
        return self.vm.clock

    def summary(self) -> dict:
        return {
            "app": self.spec.name,
            "dimmunix": self.dimmunix_enabled,
            "status": self.run.status,
            "threads": self.spec.threads,
            "peak_syncs_per_sec": round(self.peak_syncs_per_sec, 1),
            "total_syncs": self.run.syncs,
            "virtual_seconds": round(self.vm.virtual_seconds(), 2),
        }


def run_app(
    spec: AppSpec,
    vm_config: Optional[VMConfig] = None,
    dimmunix: bool = True,
    history: Optional[History] = None,
    phases: Sequence[Phase] = STANDARD_PROFILE,
    peak_window_seconds: float = PEAK_WINDOW_SECONDS,
    max_ticks: Optional[int] = None,
) -> AppRunResult:
    """Fork a process for ``spec`` and run its workload to completion."""
    base_config = vm_config or TABLE1_VM_CONFIG
    config = base_config if dimmunix else base_config.vanilla()
    vm = DalvikVM(config, history=history, name=f"app:{spec.package}")
    program = build_worker_program(spec, config, phases)
    for index in range(spec.threads):
        vm.spawn(program, name=f"{spec.name}-worker-{index + 1}")
    profiler = SyncProfiler(
        config.ticks_per_second, bucket_seconds=0.25
    ).attach(vm)
    run = vm.run(max_ticks=max_ticks)
    peak = profiler.peak_window(peak_window_seconds)
    return AppRunResult(
        spec=spec,
        vm=vm,
        run=run,
        profiler=profiler,
        peak_syncs_per_sec=peak.rate,
        dimmunix_enabled=dimmunix,
    )


def run_app_pair(
    spec: AppSpec,
    vm_config: Optional[VMConfig] = None,
    phases: Sequence[Phase] = STANDARD_PROFILE,
    peak_window_seconds: float = PEAK_WINDOW_SECONDS,
) -> tuple[AppRunResult, AppRunResult]:
    """Run ``spec`` with Dimmunix and vanilla (same seed and workload)."""
    with_dimmunix = run_app(
        spec,
        vm_config,
        dimmunix=True,
        phases=phases,
        peak_window_seconds=peak_window_seconds,
    )
    without = run_app(
        spec,
        vm_config,
        dimmunix=False,
        phases=phases,
        peak_window_seconds=peak_window_seconds,
    )
    return with_dimmunix, without
