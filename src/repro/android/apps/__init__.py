"""Synthetic Table-1 applications and their workload runner."""

from repro.android.apps.base import (
    AppSpec,
    Phase,
    STANDARD_PROFILE,
    build_worker_program,
    outside_compute_ticks,
    per_sync_budget_ticks,
)
from repro.android.apps.catalog import (
    ANGRY_BIRDS,
    BROWSER,
    BY_NAME,
    CALENDAR,
    CAMERA,
    EMAIL,
    MAPS,
    MARKET,
    TABLE1_APPS,
    TALK,
    app_by_name,
)
from repro.android.apps.workload import (
    AppRunResult,
    PEAK_WINDOW_SECONDS,
    run_app,
    run_app_pair,
)

__all__ = [
    "AppSpec",
    "Phase",
    "STANDARD_PROFILE",
    "build_worker_program",
    "per_sync_budget_ticks",
    "outside_compute_ticks",
    "TABLE1_APPS",
    "BY_NAME",
    "app_by_name",
    "EMAIL",
    "BROWSER",
    "MAPS",
    "MARKET",
    "CALENDAR",
    "TALK",
    "ANGRY_BIRDS",
    "CAMERA",
    "AppRunResult",
    "run_app",
    "run_app_pair",
    "PEAK_WINDOW_SECONDS",
]
