"""The eight applications of Table 1.

Thread counts, peak syncs/sec, and vanilla memory are the paper's
measured values; ``lock_objects`` and ``sync_sites`` are sized so that
Dimmunix's per-app structure growth lands in the paper's measured
1.3–5.3 % band (an app that locks more distinct objects pays more,
because eager fattening allocates a monitor + RAG node per object).
"""

from __future__ import annotations

from repro.android.apps.base import AppSpec

EMAIL = AppSpec(
    name="Email",
    package="email",
    threads=46,
    target_syncs_per_sec=1952,
    vanilla_mb=15.0,
    lock_objects=4100,
    sync_sites=16,
)

BROWSER = AppSpec(
    name="Browser",
    package="browser",
    threads=61,
    target_syncs_per_sec=1411,
    vanilla_mb=37.9,
    lock_objects=5600,
    sync_sites=20,
)

MAPS = AppSpec(
    name="Maps",
    package="maps",
    threads=119,
    target_syncs_per_sec=1143,
    vanilla_mb=22.9,
    lock_objects=4300,
    sync_sites=18,
)

MARKET = AppSpec(
    name="Market",
    package="vending",
    threads=78,
    target_syncs_per_sec=891,
    vanilla_mb=17.3,
    lock_objects=3200,
    sync_sites=14,
)

CALENDAR = AppSpec(
    name="Calendar",
    package="calendar",
    threads=26,
    target_syncs_per_sec=815,
    vanilla_mb=14.0,
    lock_objects=2800,
    sync_sites=12,
)

TALK = AppSpec(
    name="Talk",
    package="talk",
    threads=33,
    target_syncs_per_sec=527,
    vanilla_mb=10.7,
    lock_objects=2100,
    sync_sites=10,
)

ANGRY_BIRDS = AppSpec(
    name="Angry Birds",
    package="angrybirds",
    threads=23,
    target_syncs_per_sec=325,
    vanilla_mb=29.3,
    lock_objects=2100,
    sync_sites=8,
)

CAMERA = AppSpec(
    name="Camera",
    package="camera",
    threads=26,
    target_syncs_per_sec=309,
    vanilla_mb=11.4,
    lock_objects=3000,
    sync_sites=8,
)

TABLE1_APPS: tuple[AppSpec, ...] = (
    EMAIL,
    BROWSER,
    MAPS,
    MARKET,
    CALENDAR,
    TALK,
    ANGRY_BIRDS,
    CAMERA,
)

BY_NAME = {spec.name: spec for spec in TABLE1_APPS}


def app_by_name(name: str) -> AppSpec:
    try:
        return BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(BY_NAME))
        raise KeyError(f"unknown app {name!r}; known apps: {known}") from None
