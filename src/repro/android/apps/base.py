"""Synthetic Android applications — the workload side of Table 1.

We cannot ship Email/Browser/Maps binaries, so each Table-1 app becomes an
:class:`AppSpec`: thread count, target peak synchronization throughput,
baseline memory, and synchronization-surface parameters (distinct lock
objects, distinct sync sites). :func:`build_worker_program` compiles a
spec into the worker program all of the app's threads run.

Workload shape (matching §5's description of the profiled apps and the
microbenchmark they distilled from them):

* each worker loops over the app's sync *sites* — small functions that
  acquire a *random lock object* (no contention by construction), busy-
  wait inside the critical section, release, then busy-wait outside;
* phases scale the outside busy-wait to model light vs. intensive usage,
  so the profiler's peak-window selection has something to select;
* the compute budget per sync is calibrated from the target syncs/sec and
  the VM cost model, so a vanilla run exhibits approximately the paper's
  measured throughput for that app.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.dalvik.program import Program, ProgramBuilder
from repro.dalvik.vm import VMConfig

# Fixed per-sync overhead of the generated loop under the default cost
# model (call + rand + enter + exit + ret + loop share), excluding the
# busy-waits. Used by the calibration below; validated by tests.
LOOP_OVERHEAD_TICKS = 9
INSIDE_COMPUTE_TICKS = 3
SITE_LINE_BASE = 1000
SITE_LINE_STRIDE = 10


@dataclass(frozen=True)
class AppSpec:
    """One application's workload and footprint parameters.

    ``threads`` / ``target_syncs_per_sec`` / ``vanilla_mb`` come straight
    from Table 1. ``lock_objects`` sizes the synchronization surface (how
    many distinct objects ever get locked — what Dimmunix must fatten and
    track), and ``sync_sites`` the number of distinct monitorenter
    program positions.
    """

    name: str
    package: str
    threads: int
    target_syncs_per_sec: int
    vanilla_mb: float
    lock_objects: int
    sync_sites: int

    def worker_file(self) -> str:
        return f"com/android/{self.package}/Worker.java"

    def lock_prefix(self) -> str:
        return f"{self.name}.obj"


@dataclass(frozen=True)
class Phase:
    """One usage phase: how long, at what fraction of the peak rate."""

    seconds: float
    intensity: float = 1.0  # 1.0 = the app's peak rate


STANDARD_PROFILE: tuple[Phase, ...] = (
    Phase(seconds=2.0, intensity=0.25),
    Phase(seconds=6.0, intensity=1.0),
    Phase(seconds=2.0, intensity=0.25),
)


def per_sync_budget_ticks(spec: AppSpec, vm_config: VMConfig) -> int:
    """Virtual ticks one synchronization may cost to hit the target rate."""
    budget = vm_config.ticks_per_second / spec.target_syncs_per_sec
    return max(int(round(budget)), LOOP_OVERHEAD_TICKS + INSIDE_COMPUTE_TICKS + 2)


def outside_compute_ticks(
    spec: AppSpec, vm_config: VMConfig, intensity: float
) -> int:
    """Busy-wait outside the critical section for a given intensity."""
    budget = per_sync_budget_ticks(spec, vm_config)
    base = budget - LOOP_OVERHEAD_TICKS - INSIDE_COMPUTE_TICKS
    if intensity <= 0:
        raise ValueError(f"intensity must be positive, got {intensity}")
    return max(int(round(base / intensity + (1 - intensity) * budget * 3)), 1)


def build_worker_program(
    spec: AppSpec,
    vm_config: VMConfig,
    phases: Sequence[Phase] = STANDARD_PROFILE,
) -> Program:
    """Compile one worker thread's program for ``spec``.

    All of an app's threads run this same program (same file, same
    lines), exactly as real worker threads share code — which is also why
    positions repeat across threads, the property Dimmunix signatures
    rely on.
    """
    builder = ProgramBuilder(spec.worker_file())
    total_rate = spec.target_syncs_per_sec

    for index, phase in enumerate(phases):
        if phase.intensity <= 0:
            # An idle phase: the app sleeps (consumes no CPU) — used by
            # the power experiment to model bursty interactive usage.
            builder.sleep(int(phase.seconds * vm_config.ticks_per_second))
            continue
        phase_syncs_total = total_rate * phase.intensity * phase.seconds
        outer_iterations = max(
            int(round(phase_syncs_total / spec.sync_sites / spec.threads)), 1
        )
        outside = outside_compute_ticks(spec, vm_config, phase.intensity)
        counter = f"phase{index}"
        label = f"phase{index}.loop"
        builder.set_reg(counter, outer_iterations)
        builder.label(label)
        for site in range(spec.sync_sites):
            builder.call(f"site{site}")
            builder.compute(outside)
        builder.loop_dec(counter, label)
    builder.halt()

    for site in range(spec.sync_sites):
        line = SITE_LINE_BASE + site * SITE_LINE_STRIDE
        builder.function(f"site{site}")
        builder.rand("r", spec.lock_objects, line=line)
        builder.monitor_enter(spec.lock_prefix(), reg="r", line=line + 1)
        builder.compute(INSIDE_COMPUTE_TICKS, line=line + 2)
        builder.monitor_exit(spec.lock_prefix(), reg="r", line=line + 4)
        builder.ret(line=line + 5)
    return builder.build()
