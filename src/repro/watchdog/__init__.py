"""Liveness watchdog — llkd-style forward-progress monitoring.

Dimmunix's cycle detector is blind to the failures Android's Live-LocK
Daemon exists for: threads that make no forward progress without ever
closing a RAG cycle. :class:`LivenessWatchdog` covers that gap on top of
the event spine — see :mod:`repro.watchdog.monitor`.
"""

from repro.watchdog.monitor import LivenessWatchdog

__all__ = ["LivenessWatchdog"]
