"""The liveness watchdog: stall scoring and mitigation off the spine.

Android's Live-LocK Daemon (llkd) samples ``/proc`` every
``ro.llk_sample_ms`` looking for threads stuck in uninterruptible
states, then escalates: mitigate (kill the stuck process), and panic if
the kill did not help. :class:`LivenessWatchdog` is that idea rebuilt on
Dimmunix's observability substrate, for the failures cycle detection
cannot see — a cycle never closes in a yield storm, a try-lock spin, or
a starved waiter, yet nothing makes progress.

It watches from two directions at once:

* **EventBus subscriber** — a per-node sliding window of
  ``request`` / ``acquired`` / ``yield`` / ``resume`` events (filtered
  to the owning core's source). A node that churns through at least
  ``watchdog_storm_ratio`` requests-plus-yields with **zero**
  acquisitions inside ``watchdog_storm_window`` seconds is a storm
  suspect: repeated parks (``yield-storm``) or repeated failed
  non-blocking requests (``try-lock-spin``).
* **Periodic scanner** — a daemon thread that snapshots the RAG every
  ``watchdog_scan_interval`` seconds (under the adapter glock, once an
  adapter has bound one) and reads each waiter's ``request_since_ns``
  age. A request older than ``watchdog_stall_age`` seconds is a
  ``stall`` suspect.

The escalation ladder is llkd's, with events instead of kills::

    observe ──► LivelockSuspectedEvent ──► WatchdogMitigationEvent
    (scan n)    (first qualifying scan,    (suspect persists into the
                 carries the stall report)  next scan; policy applies)

Every suspicion carries a *stall report*: the current suspects with
their ages and event windows, plus the RAG fragment around them —
plain JSON, so it survives the event wire form untouched.

Mitigation policies (:class:`repro.config.WatchdogPolicy`): ``report``
emits the mitigation event and nothing else; ``break_youngest`` reuses
the starvation-override machinery — the youngest suspect (smallest
request age: breaking it loses the least progress) that is parked by
avoidance gets a one-shot bypass and a wake, exactly like the
yield-timeout safety net. One mitigation per scan, like llkd's one kill
per detection.

Cost contract: the watchdog adds **zero** code to the lock path. Off
(the default) there is no subscription and no thread — not even an
attribute check at any engine site. On, the per-event cost is one
dict probe plus a bounded deque append inside bus dispatch, and all
scanning happens on the watchdog's own thread.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Optional

from repro.config import WatchdogPolicy
from repro.core.events import LivelockSuspectedEvent, WatchdogMitigationEvent
from repro.telemetry.ragdump import rag_snapshot

# Original primitives, captured before any platform-wide patch: the
# watchdog must never block on an immunized lock.
_Condition = threading.Condition
_Lock = threading.Lock
_Thread = threading.Thread

_WINDOW_KINDS = ("request", "acquired", "yield", "resume")

#: scans a mitigated suspect must stay stuck before it re-arms for
#: another mitigation round (llkd re-samples before re-escalating).
_REARM_SCANS = 2


class LivenessWatchdog:
    """Forward-progress monitor for one :class:`DimmunixCore`."""

    def __init__(self, core, *, autostart: bool = True) -> None:
        self.core = core
        self.events = core.events
        self.source = core.source
        config = core.config
        self.policy: WatchdogPolicy = config.watchdog_policy
        self.scan_interval = config.watchdog_scan_interval
        self._stall_age_ns = int(config.watchdog_stall_age * 1e9)
        self._window_ns = int(config.watchdog_storm_window * 1e9)
        self.storm_ratio = config.watchdog_storm_ratio
        # The adapter's process-global lock, bound by the first adapter
        # driving this core (see RuntimeAdapter / AioRuntimeAdapter).
        # Until then scans are racy reads (the rag_dump contract) and
        # mitigation stays a no-op — engine calls must be serialized.
        self._glock = None
        # Per-node sliding event windows, keyed by thread/task name.
        # Mutated inside bus dispatch and read by the scanner thread,
        # so guarded by a dedicated (original) lock.
        self._wlock = _Lock()
        self._windows: dict[str, deque] = {}
        self._window_cap = max(64, 8 * self.storm_ratio)
        # Escalation-ladder state per suspect name.
        self._ladder: dict[str, dict] = {}
        self.scans = 0
        self.scan_errors = 0
        self.suspects_total = 0
        self.mitigations = 0
        self.oldest_waiter_age_ns = 0
        self.last_scan_ns: Optional[int] = None
        self.last_report: Optional[dict] = None
        self._cond = _Condition(_Lock())
        self._closed = False
        # Eager start, like the persister and sync pump: Thread.start()
        # inside bus dispatch would run under the engine's global lock.
        self._worker: Optional[threading.Thread] = None
        if autostart:
            self._worker = _Thread(
                target=self._run,
                name=f"dimmunix-watchdog-{self.source}",
                daemon=True,
            )
            self._worker.start()
        self._subscription = self.events.subscribe(
            self._on_event, kinds=_WINDOW_KINDS, source=self.source
        )

    # ------------------------------------------------------------------
    # adapter wiring
    # ------------------------------------------------------------------

    def bind_glock(self, glock) -> None:
        """Serialize scans/mitigation under the adapter's global lock.

        First adapter wins — a cross-domain adapter joining the same
        engine passes the owning adapter's lock anyway.
        """
        if self._glock is None:
            self._glock = glock

    # ------------------------------------------------------------------
    # bus side (runs inside dispatch — append and return)
    # ------------------------------------------------------------------

    def _on_event(self, event) -> None:
        with self._wlock:
            window = self._windows.get(event.thread)
            if window is None:
                window = self._windows[event.thread] = deque(
                    maxlen=self._window_cap
                )
            window.append((event.ts_ns, event.kind))

    # ------------------------------------------------------------------
    # scanner side
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                if not self._closed:
                    self._cond.wait(timeout=self.scan_interval)
                if self._closed:
                    return
            try:
                self.scan_once()
            except Exception:
                # The watchdog must be as unkillable as the persister:
                # a torn racy read is a skipped scan, not a dead thread.
                self.scan_errors += 1

    def scan_once(self, now_ns: Optional[int] = None) -> Optional[dict]:
        """Run one scan; returns the stall report if anything fired.

        The synchronous entry point the scenario tests and benches call
        directly — the worker thread calls exactly this.
        """
        if now_ns is None:
            now_ns = time.monotonic_ns()
        self.scans += 1

        glock = self._glock
        try:
            if glock is not None:
                with glock:
                    snapshot = rag_snapshot(self.core, now_ns=now_ns)
            else:
                snapshot = rag_snapshot(self.core, now_ns=now_ns)
        except Exception:
            snapshot = {"threads": [], "locks": [], "edges": []}

        # -- stall scoring off request_since_ns ------------------------
        candidates: dict[str, dict] = {}
        ages: dict[str, int] = {}
        oldest = 0
        for entry in snapshot.get("threads", ()):
            age = entry.get("request_age_ns")
            if age is None:
                continue
            ages[entry["name"]] = age
            oldest = max(oldest, age)
            if age >= self._stall_age_ns:
                candidates[entry["name"]] = {
                    "reason": "stall",
                    "age_ns": age,
                    "window": {},
                }
        self.oldest_waiter_age_ns = oldest

        # -- storm scoring off the event windows -----------------------
        cutoff = now_ns - self._window_ns
        with self._wlock:
            for name in list(self._windows):
                window = self._windows[name]
                while window and window[0][0] < cutoff:
                    window.popleft()
                if not window:
                    del self._windows[name]
                    continue
                counts = {kind: 0 for kind in _WINDOW_KINDS}
                for _ts, kind in window:
                    counts[kind] += 1
                existing = candidates.get(name)
                if existing is not None:
                    existing["window"] = counts
                    continue
                if counts["acquired"]:
                    continue  # forward progress inside the window
                if counts["request"] + counts["yield"] < self.storm_ratio:
                    continue
                candidates[name] = {
                    "reason": (
                        "yield-storm" if counts["yield"] else "try-lock-spin"
                    ),
                    "age_ns": ages.get(name, 0),
                    "window": counts,
                }

        # -- the escalation ladder -------------------------------------
        for name in [n for n in self._ladder if n not in candidates]:
            del self._ladder[name]  # recovered: made progress
        newly: list[str] = []
        persisting: list[str] = []
        for name in candidates:
            state = self._ladder.get(name)
            if state is None:
                self._ladder[name] = {"stage": "suspected", "scan": self.scans}
                newly.append(name)
            elif state["stage"] == "suspected" and state["scan"] < self.scans:
                persisting.append(name)
            elif (
                state["stage"] == "mitigated"
                and self.scans - state["scan"] >= _REARM_SCANS
            ):
                state.update(stage="suspected", scan=self.scans)

        report: Optional[dict] = None
        if newly or persisting:
            report = self._stall_report(candidates, snapshot)
            self.last_report = report
        for name in newly:
            self.suspects_total += 1
            info = candidates[name]
            self._publish(
                LivelockSuspectedEvent,
                thread=name,
                reason=info["reason"],
                age_ns=info["age_ns"],
                scan=self.scans,
                report=report,
            )
        if persisting:
            self._mitigate(persisting, candidates)
        self.last_scan_ns = now_ns
        return report

    def _stall_report(self, candidates: dict, snapshot: dict) -> dict:
        """The structured stall report: suspects + the RAG around them."""
        names = set(candidates)
        threads = [
            entry
            for entry in snapshot.get("threads", ())
            if entry.get("name") in names
        ]
        edges = [
            edge
            for edge in snapshot.get("edges", ())
            if edge.get("from") in names or edge.get("to") in names
        ]
        lock_names = {
            edge["to"] for edge in edges if edge.get("kind") == "request"
        } | {edge["from"] for edge in edges if edge.get("kind") == "hold"}
        locks = [
            entry
            for entry in snapshot.get("locks", ())
            if entry.get("name") in lock_names
        ]
        return {
            "scan": self.scans,
            "source": self.source,
            "oldest_waiter_age_ns": self.oldest_waiter_age_ns,
            "suspects": [
                {
                    "node": name,
                    "reason": info["reason"],
                    "age_ns": info["age_ns"],
                    "window": dict(info["window"]),
                }
                for name, info in sorted(candidates.items())
            ],
            "rag": {"threads": threads, "locks": locks, "edges": edges},
        }

    def _mitigate(self, persisting: list, candidates: dict) -> None:
        """One mitigation per scan, on the youngest persisting suspect."""
        target = min(persisting, key=lambda name: candidates[name]["age_ns"])
        info = candidates[target]
        action = "reported"
        if self.policy is WatchdogPolicy.BREAK_YOUNGEST:
            action = self._break(target)
        self.mitigations += 1
        self._publish(
            WatchdogMitigationEvent,
            thread=target,
            policy=self.policy.value,
            action=action,
            reason=info["reason"],
            age_ns=info["age_ns"],
            scan=self.scans,
        )
        self._ladder[target] = {"stage": "mitigated", "scan": self.scans}

    def _break(self, name: str) -> str:
        """Grant a parked suspect a one-shot bypass and wake it.

        The starvation-override machinery, driven from the watchdog
        instead of the yield timeout: ``force_bypass`` records the
        starvation signature (trigger ``"watchdog"``) and arms the
        bypass, the notify wakes the parked unit through every
        adapter's waker. A suspect that is physically blocked (not
        parked by avoidance) is left alone — nothing safe to break.
        """
        glock = self._glock
        if glock is None:
            return "no-op"
        with glock:
            node = next(
                (
                    thread
                    for thread in self.core.rag.threads()
                    if thread.name == name
                ),
                None,
            )
            if node is None or node.yielding_on is None:
                return "no-op"
            signature = node.yielding_on
            self.core.force_bypass(node, trigger="watchdog")
            self.core.notify_signatures((signature,))
        return "bypass-granted"

    def _publish(self, event_cls, **fields) -> None:
        self.events.publish(
            event_cls(
                source=self.source,
                ts=self.core._now(),
                ts_ns=time.monotonic_ns(),
                **fields,
            )
        )

    # ------------------------------------------------------------------
    # health surface
    # ------------------------------------------------------------------

    def health(self) -> dict:
        """Plain-JSON liveness health — the ``dx.health()`` /
        fleet-``metrics``-op contribution of this core."""
        with self._wlock:
            tracked = len(self._windows)
        return {
            "scans": self.scans,
            "oldest_waiter_age_ns": self.oldest_waiter_age_ns,
            "suspected_now": len(self._ladder),
            "livelock_suspects": self.suspects_total,
            "watchdog_mitigations": self.mitigations,
            "tracked_nodes": tracked,
            "policy": self.policy.value,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop the scanner and drop the subscription. Safe to repeat."""
        with self._cond:
            already = self._closed
            self._closed = True
            self._cond.notify_all()
        if self._worker is not None and self._worker.is_alive():
            self._worker.join(timeout=5.0)
        if not already:
            self.events.unsubscribe(self._subscription)

    def __repr__(self) -> str:
        return (
            f"<LivenessWatchdog {self.source}: {self.scans} scan(s), "
            f"{self.suspects_total} suspect(s), "
            f"{self.mitigations} mitigation(s), policy={self.policy.value}>"
        )


__all__ = ["LivenessWatchdog"]
