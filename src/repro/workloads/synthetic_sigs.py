"""Synthetic deadlock signatures for the §5 microbenchmark.

The paper loads a history of 64–256 synthetic signatures "to simulate the
scenario in which many synchronization statements are involved in
deadlock bugs" — i.e. the avoidance machinery runs on the hot path
without actually stalling the workload.

Two generation modes:

* ``partner-miss`` (the benchmark mode): each signature pairs one *live*
  position (a site the workload really executes) with one position that
  never occurs. ``signatures_at`` hits, the instantiation check runs, and
  it always fails fast on the empty partner queue — maximum bookkeeping,
  zero serialization, which is what lets the paper measure pure overhead.
* ``hot``: both positions are live sites; instantiation can succeed and
  threads get parked. Used by stress and liveness tests, not by E1.

Beyond the benchmark modes, :func:`make_collapsed_signature` and
:func:`hard_matching_entries` build the *adversarial* history shape —
an N-entry signature collapsed onto one line over an occupancy that
defeats polynomial counting — used by the A8 matcher bench and the
budget regression tests.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.callstack import CallStack
from repro.core.history import History
from repro.core.position import PositionKey
from repro.core.signature import DeadlockSignature, SignatureEntry

PARTNER_MISS = "partner-miss"
HOT = "hot"


def _stack_for(key: tuple[str, int], function: str = "synthetic") -> CallStack:
    file, line = key
    return CallStack.single(file, line, function)


def make_signature(
    outer_a: tuple[str, int],
    outer_b: tuple[str, int],
    inner_tag: int = 0,
) -> DeadlockSignature:
    """A two-thread signature with the given outer positions."""
    inner_a = _stack_for(("<synthetic-inner>", 2 * inner_tag + 1))
    inner_b = _stack_for(("<synthetic-inner>", 2 * inner_tag + 2))
    return DeadlockSignature(
        [
            SignatureEntry(outer=_stack_for(outer_a), inner=inner_a),
            SignatureEntry(outer=_stack_for(outer_b), inner=inner_b),
        ]
    )


def generate_history(
    live_sites: Sequence[tuple[str, int]],
    count: int,
    mode: str = PARTNER_MISS,
    max_signatures: int = 4096,
) -> History:
    """A history of ``count`` synthetic signatures over ``live_sites``.

    Signatures cycle through the live sites so every site is "involved in
    a deadlock bug"; inner positions are unique per signature so no two
    signatures deduplicate.
    """
    if not live_sites:
        raise ValueError("need at least one live site")
    if mode not in (PARTNER_MISS, HOT):
        raise ValueError(f"unknown mode {mode!r}")
    if mode == HOT and len(live_sites) < 2:
        raise ValueError("hot mode needs at least two live sites")
    history = History(max_signatures=max_signatures)
    for index in range(count):
        site = live_sites[index % len(live_sites)]
        if mode == PARTNER_MISS:
            partner = ("<never-executed>", index + 1)
        else:
            partner = live_sites[(index + 1) % len(live_sites)]
        history.add(make_signature(site, partner, inner_tag=index))
    return history


def make_collapsed_signature(
    site: tuple[str, int], entries: int, inner_tag: int = 0
) -> DeadlockSignature:
    """An N-entry cycle signature whose outer positions all collapse onto
    one program location — the shape that exposed the matcher's
    exponential edge in the A7 fan-out work (N threads deadlocking
    through one wrapper line). Inner positions stay distinct so the
    signature is well-formed and never deduplicates against another."""
    if entries < 1:
        raise ValueError("a signature needs at least one entry")
    outer = _stack_for(site)
    return DeadlockSignature(
        [
            SignatureEntry(
                outer=outer,
                inner=_stack_for(
                    ("<synthetic-inner>", 100 * inner_tag + index + 1)
                ),
            )
            for index in range(entries)
        ]
    )


def hard_matching_entries(
    entries: int, deficiency: int = 1
) -> list[tuple[int, int]]:
    """(thread, lock) index pairs that defeat counting but not search.

    Occupancy for one collapsed position whose bipartite entry graph
    (threads x locks, one edge per queue entry) has maximum matching
    ``entries - deficiency`` while both the thread union and the lock
    union stay ``>= entries``: every polynomial counting bound
    (per-slot occupancy, distinct-thread/distinct-lock totals) passes,
    so refuting instantiability requires the exact backtracking search —
    which must enumerate the injective selections of the complete block
    below before concluding there is no assignment. This is the
    adversarial workload the ``match_step_budget`` exists for; cost
    grows combinatorially in ``entries`` (N=4 refutes in tens of steps,
    N=12 exceeds the default budget).

    ``deficiency`` is how far the maximum matching falls short of the
    signature length. Engine-level scenarios need ``deficiency=2``: the
    §2.2 pretend-grant inserts the requester's own (fresh-thread,
    fresh-lock) entry, which raises the maximum matching by exactly one.

    Structure (``a = entries - 2 - deficiency``): a complete bipartite
    block on threads ``0..a-1`` x locks ``0..a-1`` (max matching ``a``),
    a lock star — threads ``a..a+entries-1`` all paired with the single
    lock ``a`` (max matching 1) — and a thread star — the single thread
    ``a+entries`` paired with locks ``a+1..a+entries`` (max matching 1).
    """
    if entries < 4:
        raise ValueError("the adversarial shape needs at least 4 entries")
    if not 1 <= deficiency <= entries - 2:
        raise ValueError(
            f"deficiency must be in 1..{entries - 2}, got {deficiency}"
        )
    a = entries - 2 - deficiency
    pairs: list[tuple[int, int]] = []
    for thread in range(a):
        for lock in range(a):
            pairs.append((thread, lock))
    for thread in range(a, a + entries):
        pairs.append((thread, a))
    for lock in range(a + 1, a + entries + 1):
        pairs.append((a + entries, lock))
    return pairs


def live_site_keys(history: History) -> set[PositionKey]:
    """All outer position keys present in a history (for assertions)."""
    keys: set[PositionKey] = set()
    for signature in history:
        keys.update(signature.outer_position_keys())
    return keys
