"""Synthetic deadlock signatures for the §5 microbenchmark.

The paper loads a history of 64–256 synthetic signatures "to simulate the
scenario in which many synchronization statements are involved in
deadlock bugs" — i.e. the avoidance machinery runs on the hot path
without actually stalling the workload.

Two generation modes:

* ``partner-miss`` (the benchmark mode): each signature pairs one *live*
  position (a site the workload really executes) with one position that
  never occurs. ``signatures_at`` hits, the instantiation check runs, and
  it always fails fast on the empty partner queue — maximum bookkeeping,
  zero serialization, which is what lets the paper measure pure overhead.
* ``hot``: both positions are live sites; instantiation can succeed and
  threads get parked. Used by stress and liveness tests, not by E1.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.callstack import CallStack
from repro.core.history import History
from repro.core.position import PositionKey
from repro.core.signature import DeadlockSignature, SignatureEntry

PARTNER_MISS = "partner-miss"
HOT = "hot"


def _stack_for(key: tuple[str, int], function: str = "synthetic") -> CallStack:
    file, line = key
    return CallStack.single(file, line, function)


def make_signature(
    outer_a: tuple[str, int],
    outer_b: tuple[str, int],
    inner_tag: int = 0,
) -> DeadlockSignature:
    """A two-thread signature with the given outer positions."""
    inner_a = _stack_for(("<synthetic-inner>", 2 * inner_tag + 1))
    inner_b = _stack_for(("<synthetic-inner>", 2 * inner_tag + 2))
    return DeadlockSignature(
        [
            SignatureEntry(outer=_stack_for(outer_a), inner=inner_a),
            SignatureEntry(outer=_stack_for(outer_b), inner=inner_b),
        ]
    )


def generate_history(
    live_sites: Sequence[tuple[str, int]],
    count: int,
    mode: str = PARTNER_MISS,
    max_signatures: int = 4096,
) -> History:
    """A history of ``count`` synthetic signatures over ``live_sites``.

    Signatures cycle through the live sites so every site is "involved in
    a deadlock bug"; inner positions are unique per signature so no two
    signatures deduplicate.
    """
    if not live_sites:
        raise ValueError("need at least one live site")
    if mode not in (PARTNER_MISS, HOT):
        raise ValueError(f"unknown mode {mode!r}")
    if mode == HOT and len(live_sites) < 2:
        raise ValueError("hot mode needs at least two live sites")
    history = History(max_signatures=max_signatures)
    for index in range(count):
        site = live_sites[index % len(live_sites)]
        if mode == PARTNER_MISS:
            partner = ("<never-executed>", index + 1)
        else:
            partner = live_sites[(index + 1) % len(live_sites)]
        history.add(make_signature(site, partner, inner_tag=index))
    return history


def live_site_keys(history: History) -> set[PositionKey]:
    """All outer position keys present in a history (for assertions)."""
    keys: set[PositionKey] = set()
    for signature in history:
        keys.update(signature.outer_position_keys())
    return keys
