"""Livelock scenarios — hangs the cycle detector can never see.

The companion pack to :mod:`repro.workloads.scenarios`: where those
workloads *deadlock* without immunity, these make no forward progress
while every RAG snapshot stays acyclic, which is exactly the blind spot
the liveness watchdog (:mod:`repro.watchdog`) exists for.

* :func:`run_pingpong_yield_storm` — the avoidance machinery itself as
  the livelock engine: a seeded antibody parks a victim whose wanted
  lock is physically *free*, while a neighbor's churn on the matched
  position wakes it into an immediate re-park, over and over
  (resume/request/yield at full tilt, the request age growing the whole
  time). ``break_youngest`` unsticks it; nothing else does until the
  neighbor quiets down.
* :func:`run_trylock_spin_pair` — two threads each holding one lock and
  spinning ``acquire(blocking=False)`` on the other's. Every attempt is
  a request that cancels without acquiring; the RAG never holds both
  request edges long enough to cycle.
* :func:`run_aio_greedy_holder` — cooperative starvation on one event
  loop: a greedy task holds a lock across ``await asyncio.sleep`` ticks
  while a starved task's request just ages.

Each runner accepts ``until`` — a zero-arg predicate polled from the
storm loop — so tests and benches stop the pathology the moment the
watchdog has seen it (e.g. ``lambda: counter.counts.get(
"livelock-suspected", 0) > 0``) instead of burning a fixed duration.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import DeadlockDetectedError

_noop_until: Callable[[], bool] = lambda: False


# ----------------------------------------------------------------------
# position helpers
# ----------------------------------------------------------------------
# With outer stacks of depth 1, every acquisition routed through one of
# these helpers shares a single program position (the MyLock collapse of
# §3.2, used deliberately): the seeded antibody's entries land on these
# two lines, making the ping-pong's avoidance matching deterministic.

def _grab_victim(lock) -> None:
    lock.acquire()  # the victim-side position


def _grab_neighbor(lock) -> None:
    lock.acquire()  # the neighbor-side position


@dataclass
class PingPongOutcome:
    """What happened to the ping-pong victim."""

    seeded: bool  # phase 1 earned (or found) the AB/BA antibody
    victim_completed: bool
    #: True when the victim got through while the neighbor was still
    #: churning — only a watchdog bypass (``break_youngest``) does that.
    unstuck_during_storm: bool
    storm_cycles: int


def run_pingpong_yield_storm(
    runtime,
    *,
    until: Optional[Callable[[], bool]] = None,
    duration: float = 2.0,
    cycle_sleep: float = 0.002,
    victim_join_timeout: float = 10.0,
) -> PingPongOutcome:
    """The yield-storm livelock: parked by immunity, woken by churn.

    Phase 1 provokes an AB/BA deadlock through the two position helpers
    so the recorded signature's entries are exactly their two lines
    (requires a ``RAISE`` detection policy). Phase 2 replays the shape
    one-sided: the neighbor holds ``A`` (occupying the neighbor-side
    position) and churns a third lock ``C`` through the same helper;
    the victim requests ``B`` through the victim-side helper. Avoidance
    sees the signature instantiable and parks the victim — although
    ``B`` is free — and every ``C`` release notifies the signature,
    waking the victim straight into another park. The victim's original
    ``request_since_ns`` stamp survives all of it (a resume-retry keeps
    the stamp), so the watchdog sees both a growing stall *and* a
    resume/yield storm.

    Run it with ``yield_timeout=None`` (or generously large): the
    adapters' own timeout safety net would otherwise unstick the victim
    before the watchdog under test gets the chance.
    """
    lock_a = runtime.lock("pingpong-a")
    lock_b = runtime.lock("pingpong-b")
    lock_c = runtime.lock("pingpong-c")
    outcome = PingPongOutcome(False, False, False, 0)
    stop_predicate = until if until is not None else _noop_until

    # -- phase 1: earn the antibody ------------------------------------
    barrier = threading.Barrier(2, timeout=10.0)
    def seed(first, second, grab) -> None:
        grab(first)
        try:
            barrier.wait()
        except threading.BrokenBarrierError:
            first.release()
            return
        try:
            grab(second)
        except DeadlockDetectedError:
            pass  # the cycle-closing side backs off empty-handed
        else:
            second.release()
        first.release()

    seed_threads = [
        threading.Thread(
            target=seed,
            args=(lock_a, lock_b, _grab_victim),
            name="pingpong-seed-victim",
        ),
        threading.Thread(
            target=seed,
            args=(lock_b, lock_a, _grab_neighbor),
            name="pingpong-seed-neighbor",
        ),
    ]
    for thread in seed_threads:
        thread.start()
    for thread in seed_threads:
        thread.join(10.0)
    outcome.seeded = runtime.core.stats.deadlocks_detected > 0

    # -- phase 2: the storm --------------------------------------------
    neighbor_holding = threading.Event()
    victim_done = threading.Event()

    def victim() -> None:
        _grab_victim(lock_b)  # parks on the seeded signature
        victim_done.set()
        lock_b.release()

    def neighbor() -> None:
        _grab_neighbor(lock_a)
        neighbor_holding.set()
        deadline = time.monotonic() + duration
        while (
            time.monotonic() < deadline
            and not victim_done.is_set()
            and not stop_predicate()
        ):
            _grab_neighbor(lock_c)
            lock_c.release()  # notifies the signature: wake, re-park
            outcome.storm_cycles += 1
            time.sleep(cycle_sleep)
        outcome.unstuck_during_storm = victim_done.is_set()
        lock_a.release()

    neighbor_thread = threading.Thread(target=neighbor, name="pingpong-neighbor")
    neighbor_thread.start()
    if not neighbor_holding.wait(5.0):  # pragma: no cover - defensive
        neighbor_thread.join(5.0)
        return outcome
    victim_thread = threading.Thread(target=victim, name="pingpong-victim")
    victim_thread.start()
    neighbor_thread.join(duration + 10.0)
    # Once the neighbor released A the signature is no longer
    # instantiable, so the victim's next wake proceeds on its own.
    victim_thread.join(victim_join_timeout)
    outcome.victim_completed = victim_done.is_set()
    return outcome


@dataclass
class TrylockSpinOutcome:
    """What happened to the spinning pair."""

    spins: int  # failed try-lock attempts across both threads
    completed: bool  # both threads exited after the stop condition


def run_trylock_spin_pair(
    runtime,
    *,
    until: Optional[Callable[[], bool]] = None,
    duration: float = 2.0,
    spin_sleep: float = 0.001,
) -> TrylockSpinOutcome:
    """Two polite threads, zero progress: the classic try-lock livelock.

    Each thread holds one lock and spins ``acquire(blocking=False)`` on
    the other's. Every attempt lands in the engine as a request that is
    cancelled without acquiring (physically busy, or parked-by-avoidance
    and abandoned — a try-lock never waits), so the event windows fill
    with requests and zero acquisitions while the RAG stays acyclic.
    A transient detection is possible (both request edges briefly
    overlap); ``RAISE`` is caught here and ``BREAK`` just fails the
    try — either way the spin continues, which is the point.
    """
    lock_a = runtime.lock("spin-a")
    lock_b = runtime.lock("spin-b")
    outcome = TrylockSpinOutcome(0, False)
    stop_predicate = until if until is not None else _noop_until
    barrier = threading.Barrier(2, timeout=10.0)
    tally = threading.Lock()

    def spinner(mine, theirs) -> None:
        mine.acquire()
        try:
            barrier.wait()
        except threading.BrokenBarrierError:
            mine.release()
            return
        deadline = time.monotonic() + duration
        while time.monotonic() < deadline and not stop_predicate():
            try:
                got = theirs.acquire(blocking=False)
            except DeadlockDetectedError:
                got = False
            if got:
                theirs.release()
            else:
                with tally:
                    outcome.spins += 1
            time.sleep(spin_sleep)
        mine.release()

    threads = [
        threading.Thread(
            target=spinner, args=(lock_a, lock_b), name="spinner-ab"
        ),
        threading.Thread(
            target=spinner, args=(lock_b, lock_a), name="spinner-ba"
        ),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(duration + 10.0)
    outcome.completed = all(not thread.is_alive() for thread in threads)
    return outcome


@dataclass
class GreedyHolderOutcome:
    """What happened on the starved event loop."""

    starved_completed: bool
    greedy_ticks: int


async def run_aio_greedy_holder(
    runtime,
    *,
    until: Optional[Callable[[], bool]] = None,
    duration: float = 2.0,
    tick_sleep: float = 0.01,
) -> GreedyHolderOutcome:
    """Cooperative starvation: one greedy task, one aging waiter.

    The greedy task takes the lock and holds it across ``await`` ticks;
    the starved task's ``async with`` request just sits in the engine,
    its ``request_since_ns`` age growing — a stall only the watchdog's
    scanner reports, since no cycle ever forms and the loop itself keeps
    spinning happily.
    """
    import asyncio

    lock = runtime.lock("aio-greedy")
    outcome = GreedyHolderOutcome(False, 0)
    stop_predicate = until if until is not None else _noop_until
    holding = asyncio.Event()

    async def greedy() -> None:
        async with lock:
            holding.set()
            deadline = time.monotonic() + duration
            while time.monotonic() < deadline and not stop_predicate():
                await asyncio.sleep(tick_sleep)
                outcome.greedy_ticks += 1

    async def starved() -> None:
        await holding.wait()
        async with lock:
            outcome.starved_completed = True

    greedy_task = asyncio.ensure_future(greedy())
    greedy_task.set_name("aio-greedy-holder")
    starved_task = asyncio.ensure_future(starved())
    starved_task.set_name("aio-starved-waiter")
    await asyncio.wait({greedy_task, starved_task}, timeout=duration + 10.0)
    for task in (greedy_task, starved_task):
        if not task.done():  # pragma: no cover - defensive
            task.cancel()
    return outcome


__all__ = [
    "GreedyHolderOutcome",
    "PingPongOutcome",
    "TrylockSpinOutcome",
    "run_aio_greedy_holder",
    "run_pingpong_yield_storm",
    "run_trylock_spin_pair",
]
