"""Classic deadlock scenarios used by examples, tests, and ablations.

* :func:`run_dining_philosophers` — N philosophers, N forks, real
  threads; deadlocks without immunity, completes with it.
* :class:`MyLock` + :func:`run_wrapper_pathology` — §3.2's wrapper
  pathology: a custom lock class funnels every acquisition through one
  program position, so depth-1 signatures serialize *all* wrapper users
  after the first deadlock (ablation A1 measures the collapse, and its
  disappearance at depth 2).
* :func:`build_wait_inversion_vm` — §3.2's wait()-induced inversion as a
  deterministic VM scenario: only interceptable because the monitor
  reacquisition inside ``Object.wait`` goes through Dimmunix.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.config import DimmunixConfig
from repro.dalvik.program import Program, ProgramBuilder
from repro.dalvik.vm import DalvikVM, VMConfig
from repro.errors import DeadlockDetectedError
from repro.runtime.runtime import DimmunixRuntime


# ----------------------------------------------------------------------
# dining philosophers (real threads)
# ----------------------------------------------------------------------

@dataclass
class PhilosopherOutcome:
    """What happened at the table."""

    meals_eaten: int
    deadlocks_detected: int
    completed: bool
    errors: list = field(default_factory=list)


def run_dining_philosophers(
    runtime: DimmunixRuntime,
    philosophers: int = 5,
    meals: int = 3,
    think_seconds: float = 0.001,
    join_timeout: float = 20.0,
    serial: bool = False,
) -> PhilosopherOutcome:
    """Everyone grabs the left fork, then the right — the textbook cycle.

    Under ``RAISE`` detection the unlucky philosopher gets a
    :class:`DeadlockDetectedError`, drops the fork, retries, and the
    table finishes dinner; the recorded signature immunizes later
    dinners, which then complete on avoidance alone (tests assert both).

    ``serial=True`` seats the philosophers one at a time (each thread
    runs to completion before the next starts): the dinner cannot
    deadlock, yet the event stream still shows every distinct thread
    taking its right fork while holding its left — exactly the
    lock-order reversals the trace miner
    (:mod:`repro.predict.tracemine`) needs to predict the circular wait
    without ever suffering it.
    """
    forks = [runtime.lock(f"fork-{index}") for index in range(philosophers)]
    meals_lock = threading.Lock()
    outcome = PhilosopherOutcome(0, 0, False)

    def dine(seat: int) -> None:
        left = forks[seat]
        right = forks[(seat + 1) % philosophers]
        eaten = 0
        while eaten < meals:
            time.sleep(think_seconds)
            try:
                with left:
                    time.sleep(think_seconds)
                    with right:
                        eaten += 1
                        with meals_lock:
                            outcome.meals_eaten += 1
            except DeadlockDetectedError:
                with meals_lock:
                    outcome.deadlocks_detected += 1
                # Back off and retry the meal (forks were released).
                time.sleep(think_seconds)

    threads = [
        threading.Thread(target=dine, args=(seat,), name=f"philosopher-{seat}")
        for seat in range(philosophers)
    ]
    if serial:
        for thread in threads:
            thread.start()
            thread.join(join_timeout)
    else:
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + join_timeout
        for thread in threads:
            thread.join(max(deadline - time.monotonic(), 0.1))
    outcome.completed = all(not t.is_alive() for t in threads)
    return outcome


# ----------------------------------------------------------------------
# the MyLock wrapper pathology (§3.2)
# ----------------------------------------------------------------------

class MyLock:
    """The paper's cautionary wrapper.

    Every ``lock()`` call funnels through one source position (the
    ``self._lock.acquire()`` line below). With outer stacks of depth 1,
    any deadlock through this class produces a signature whose position
    matches *every* MyLock acquisition in the program — so avoidance
    serializes them all. With depth ≥ 2, the caller's frame
    differentiates the sites and the collapse disappears.
    """

    def __init__(self, runtime: DimmunixRuntime, name: str = "") -> None:
        self._lock = runtime.lock(name or "mylock")

    def lock(self) -> None:
        self._lock.acquire()

    def unlock(self) -> None:
        self._lock.release()


@dataclass
class WrapperPathologyResult:
    """Throughput through the wrapper before/after a deadlock signature."""

    stack_depth: int
    syncs_per_sec_clean: float
    syncs_per_sec_after_deadlock: float
    yields_after: int
    runtime: Optional[DimmunixRuntime] = None

    @property
    def slowdown(self) -> float:
        if self.syncs_per_sec_after_deadlock == 0:
            return float("inf")
        return self.syncs_per_sec_clean / self.syncs_per_sec_after_deadlock


def _wrapper_throughput(
    runtime: DimmunixRuntime,
    workers: int,
    iterations: int,
    spin: int,
) -> float:
    """Aggregate rate of uncontended MyLock lock/unlock pairs."""
    locks = [MyLock(runtime, f"wrapped-{index}") for index in range(workers)]

    def worker(index: int) -> None:
        mylock = locks[index]  # private lock: no real contention
        for _ in range(iterations):
            mylock.lock()
            for _ in range(spin):
                pass
            mylock.unlock()

    threads = [
        threading.Thread(target=worker, args=(index,))
        for index in range(workers)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return workers * iterations / elapsed if elapsed > 0 else 0.0


def provoke_wrapper_deadlock(runtime: DimmunixRuntime) -> bool:
    """Deadlock two threads through MyLock so its position enters history.

    Returns True when a signature was recorded.
    """
    a = MyLock(runtime, "pathology-a")
    b = MyLock(runtime, "pathology-b")
    before = len(runtime.history)
    release_order = threading.Barrier(2)

    def one() -> None:
        try:
            a.lock()
            release_order.wait(timeout=5)
            time.sleep(0.02)
            b.lock()
            b.unlock()
            a.unlock()
        except DeadlockDetectedError:
            a.unlock()

    def two() -> None:
        try:
            b.lock()
            release_order.wait(timeout=5)
            time.sleep(0.02)
            a.lock()
            a.unlock()
            b.unlock()
        except DeadlockDetectedError:
            b.unlock()

    threads = [threading.Thread(target=one), threading.Thread(target=two)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(10)
    return len(runtime.history) > before


@dataclass
class WrapperFalsePositive:
    """Did avoidance stall an *independent* wrapper acquisition?"""

    stack_depth: int
    stalled: bool
    yields: int
    stall_seconds: float


def measure_wrapper_false_positive(
    runtime: DimmunixRuntime,
    grace_seconds: float = 0.25,
    timeout: float = 10.0,
) -> WrapperFalsePositive:
    """The crisp form of the §3.2 pathology, with forced overlap.

    After a deadlock through :class:`MyLock` is in the history, thread M
    holds wrapper lock ``a`` while thread T acquires *unrelated* wrapper
    lock ``b``. At depth 1 both acquisitions share one position, so the
    signature instantiates and T is parked until M releases — a pure
    false positive serializing independent locks. At depth ≥ 2 the caller
    frames differ and T proceeds immediately.

    Must be called on a runtime where :func:`provoke_wrapper_deadlock`
    already ran.
    """
    a = MyLock(runtime, "fp-a")
    b = MyLock(runtime, "fp-b")
    yields_before = runtime.stats.yields
    stall_seconds: dict = {}
    attempt_started = threading.Event()

    def independent_user() -> None:
        attempt_started.set()
        start = time.perf_counter()
        b.lock()
        stall_seconds["value"] = time.perf_counter() - start
        b.unlock()

    a.lock()
    try:
        thread = threading.Thread(target=independent_user, name="fp-user")
        thread.start()
        assert attempt_started.wait(timeout)
        # Hold `a` until T either parks (depth 1) or has clearly sailed
        # through (depth 2, or T finished).
        deadline = time.monotonic() + grace_seconds
        while time.monotonic() < deadline:
            if runtime.stats.yields > yields_before or "value" in stall_seconds:
                break
            time.sleep(0.001)
    finally:
        a.unlock()
    thread.join(timeout)
    assert not thread.is_alive(), "independent wrapper user never finished"
    return WrapperFalsePositive(
        stack_depth=runtime.config.stack_depth,
        stalled=runtime.stats.yields > yields_before,
        yields=runtime.stats.yields - yields_before,
        stall_seconds=stall_seconds.get("value", float("nan")),
    )


def run_wrapper_pathology(
    stack_depth: int = 1,
    workers: int = 4,
    iterations: int = 300,
    spin: int = 50,
    yield_timeout: float = 1.0,
) -> WrapperPathologyResult:
    """Measure §3.2's pathology at a given outer-stack depth (ablation A1).

    Throughput through independent :class:`MyLock` instances is measured
    clean, then again after a deadlock through the wrapper put its
    acquisition position into the history. At depth 1 every wrapper
    acquisition shares that position, so avoidance serializes them all;
    at depth ≥ 2 the callers' frames differentiate the sites and the
    collapse disappears.
    """
    runtime = DimmunixRuntime(
        DimmunixConfig(stack_depth=stack_depth, yield_timeout=yield_timeout),
        name=f"wrapper-depth{stack_depth}",
    )
    clean = _wrapper_throughput(runtime, workers, iterations, spin)
    if not provoke_wrapper_deadlock(runtime):
        raise RuntimeError("failed to provoke the wrapper deadlock")
    yields_before = runtime.stats.yields
    after = _wrapper_throughput(runtime, workers, iterations, spin)
    return WrapperPathologyResult(
        stack_depth=stack_depth,
        syncs_per_sec_clean=clean,
        syncs_per_sec_after_deadlock=after,
        yields_after=runtime.stats.yields - yields_before,
        runtime=runtime,
    )


# ----------------------------------------------------------------------
# wait()-induced inversion (§3.2) — deterministic VM scenario
# ----------------------------------------------------------------------

WAIT_INV_FILE = "WaitInversion.java"


def build_wait_inversion_programs(
    wait_timeout_ticks: Optional[int] = None,
) -> tuple[Program, Program]:
    """The paper's two-thread wait() example.

    Thread 1::                      Thread 2::
        synchronized(x) {               synchronized(x) {
          synchronized(y) {               synchronized(y) { }
            x.wait();                   }
        }}

    Thread 1 parks in ``x.wait()`` *still holding y*. Thread 2 takes
    ``x``, notifies, then enters ``synchronized(y)`` — and blocks on y
    while owning x. Thread 1's reacquisition of ``x`` (inside wait)
    closes the cycle. Only a waitMonitor-level interception sees that
    reacquisition; bytecode instrumentation cannot (§3.2).

    ``wait_timeout_ticks`` makes thread 1 use ``x.wait(timeout)``. The
    *untimed* inversion is detectable but not schedule-avoidable: once
    thread 1 sits in ``x.wait()`` holding ``y``, only thread 2's notify
    can release it, and parking thread 2 starves them both. With a timed
    wait (the common real-world pattern), avoidance parks thread 2, the
    wait times out, thread 1 releases ``y``, and both threads finish —
    the full detect-then-avoid story.
    """
    t1 = ProgramBuilder(WAIT_INV_FILE)
    t1.monitor_enter("x", line=10)
    t1.monitor_enter("y", line=11)
    # releases x only; y stays held
    t1.wait("x", timeout=wait_timeout_ticks, line=12)
    t1.monitor_exit("y", line=13)
    t1.monitor_exit("x", line=14)
    t1.halt()

    t2 = ProgramBuilder(WAIT_INV_FILE)
    t2.sleep(30, line=19)          # let thread 1 reach the wait first
    t2.monitor_enter("x", line=20)
    t2.notify_all("x", line=21)
    t2.monitor_enter("y", line=22)
    t2.monitor_exit("y", line=23)
    t2.monitor_exit("x", line=24)
    t2.halt()
    return t1.build(), t2.build()


def run_wait_inversion_vm(
    vm_config: Optional[VMConfig] = None,
    history=None,
    wait_timeout_ticks: Optional[int] = None,
    max_ticks: int = 100_000,
) -> DalvikVM:
    """Run the wait-inversion scenario; returns the finished VM."""
    vm = DalvikVM(vm_config or VMConfig(), history=history, name="wait-inversion")
    program_one, program_two = build_wait_inversion_programs(
        wait_timeout_ticks
    )
    vm.spawn(program_one, "waiter")
    vm.spawn(program_two, "notifier")
    vm.run(max_ticks=max_ticks)
    return vm
