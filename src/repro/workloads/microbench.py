"""The §5 microbenchmark, for real threads and for the substrate VM.

The paper distills the most intensive synchronization behaviour it
observed (Email, Browser) into a microbenchmark: 2–512 threads execute
synchronized blocks on *random lock objects* (to avoid contention, which
would hide overhead), *busy-wait* inside and outside the critical
sections (sleeps would hide overhead too), and run against a history of
*64–256 synthetic signatures* so the avoidance machinery is exercised on
every acquisition.

Two harnesses share one configuration:

* :func:`run_real_microbench` — real ``threading`` threads over
  :class:`~repro.runtime.locks.DimmunixLock` wrappers; wall-clock
  throughput. Distinct synchronization sites are genuine distinct Python
  call sites, created by compiling a small generated module (one
  ``lock.acquire()`` per site, each on its own line).
* :func:`run_vm_microbench` — the same workload as a VM program;
  virtual-time throughput, fully deterministic.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.config import DimmunixConfig
from repro.core.history import History
from repro.core.stats import DimmunixStats
from repro.dalvik.program import Program, ProgramBuilder
from repro.dalvik.vm import DalvikVM, VMConfig
from repro.runtime.runtime import DimmunixRuntime
from repro.workloads.synthetic_sigs import PARTNER_MISS, generate_history

MODE_VANILLA = "vanilla"            # plain threading.Lock / Dimmunix-free VM
MODE_DIMMUNIX = "dimmunix"          # full immunity
MODE_WRAPPER_OFF = "wrapper-off"    # wrapper objects with Dimmunix disabled


@dataclass(frozen=True)
class MicrobenchConfig:
    """Knobs of the §5 microbenchmark."""

    threads: int = 16
    locks: int = 64
    sites: int = 8
    iterations_per_thread: int = 200
    inside_spin: int = 20
    outside_spin: int = 60
    history_size: int = 128
    history_mode: str = PARTNER_MISS
    static_ids: bool = False
    seed: int = 0

    def scaled(self, **changes) -> "MicrobenchConfig":
        return replace(self, **changes)


@dataclass
class MicrobenchResult:
    """One measured run."""

    mode: str
    syncs: int
    seconds: float
    stats: Optional[DimmunixStats] = None

    @property
    def syncs_per_sec(self) -> float:
        return self.syncs / self.seconds if self.seconds > 0 else 0.0

    def overhead_vs(self, baseline: "MicrobenchResult") -> float:
        """Throughput loss relative to ``baseline``, as a fraction."""
        if baseline.syncs_per_sec == 0:
            return 0.0
        return 1.0 - self.syncs_per_sec / baseline.syncs_per_sec


# ----------------------------------------------------------------------
# real-thread harness
# ----------------------------------------------------------------------

SITES_FILENAME = "<microbench-sites>"


def _spin(count: int) -> None:
    for _ in range(count):
        pass


def make_acquire_sites(count: int) -> tuple[list[Callable], list[tuple[str, int]]]:
    """Generate ``count`` genuine distinct synchronization sites.

    Returns the site functions and the (file, line) keys of their
    ``acquire`` statements — the positions synthetic signatures must
    target. Each generated function is::

        def site_N(lock, spin):
            lock.acquire()
            _spin(spin)
            lock.release()
    """
    lines: list[str] = []
    acquire_keys: list[tuple[str, int]] = []
    for index in range(count):
        start_line = len(lines) + 1  # 1-based line of the def
        lines.append(f"def site_{index}(lock, spin):")
        lines.append("    lock.acquire()")
        acquire_keys.append((SITES_FILENAME, start_line + 1))
        lines.append("    _spin(spin)")
        lines.append("    lock.release()")
    source = "\n".join(lines)
    namespace: dict = {"_spin": _spin}
    exec(compile(source, SITES_FILENAME, "exec"), namespace)
    sites = [namespace[f"site_{index}"] for index in range(count)]
    return sites, acquire_keys


def _make_locks(mode: str, count: int, runtime: Optional[DimmunixRuntime]):
    if mode == MODE_VANILLA:
        import _thread

        return [_thread.allocate_lock() for _ in range(count)]
    assert runtime is not None
    return [runtime.lock(f"microlock-{index}") for index in range(count)]


def run_real_microbench(
    config: MicrobenchConfig,
    mode: str = MODE_DIMMUNIX,
) -> MicrobenchResult:
    """One wall-clock measurement of the microbenchmark."""
    if mode not in (MODE_VANILLA, MODE_DIMMUNIX, MODE_WRAPPER_OFF):
        raise ValueError(f"unknown mode {mode!r}")

    sites, acquire_keys = make_acquire_sites(config.sites)
    runtime: Optional[DimmunixRuntime] = None
    if mode != MODE_VANILLA:
        if config.static_ids:
            # Static-id mode (A2): positions come from small integers,
            # not stack walks; signatures target the static keys.
            live_keys = [("<static>", s) for s in range(config.sites)]
        else:
            live_keys = acquire_keys
        history = (
            generate_history(
                live_keys, config.history_size, config.history_mode
            )
            if mode == MODE_DIMMUNIX
            else None
        )
        dconfig = DimmunixConfig(
            enabled=(mode == MODE_DIMMUNIX),
            static_ids=config.static_ids,
            yield_timeout=2.0,
        )
        runtime = DimmunixRuntime(dconfig, history=history, name=f"microbench-{mode}")

    locks = _make_locks(mode, config.locks, runtime)
    use_static = config.static_ids and mode == MODE_DIMMUNIX
    barrier = threading.Barrier(config.threads + 1)

    def worker(worker_index: int) -> None:
        rng = random.Random(config.seed * 1000 + worker_index)
        local_locks = locks
        local_sites = sites
        inside = config.inside_spin
        outside = config.outside_spin
        barrier.wait()
        for iteration in range(config.iterations_per_thread):
            lock = local_locks[rng.randrange(len(local_locks))]
            if use_static:
                site_id = iteration % config.sites
                lock.acquire(site_id=site_id)
                _spin(inside)
                lock.release()
            else:
                local_sites[iteration % len(local_sites)](lock, inside)
            _spin(outside)

    threads = [
        threading.Thread(target=worker, args=(index,), name=f"micro-{index}")
        for index in range(config.threads)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    return MicrobenchResult(
        mode=mode,
        syncs=config.threads * config.iterations_per_thread,
        seconds=elapsed,
        stats=runtime.stats if runtime is not None else None,
    )


def run_real_pair(
    config: MicrobenchConfig,
) -> tuple[MicrobenchResult, MicrobenchResult]:
    """(vanilla, dimmunix) under identical workload parameters."""
    vanilla = run_real_microbench(config, MODE_VANILLA)
    immunized = run_real_microbench(config, MODE_DIMMUNIX)
    return vanilla, immunized


def measure_spin_rate(sample: int = 2_000_000) -> float:
    """Spins per second of the busy-wait loop on this machine."""
    start = time.perf_counter()
    _spin(sample)
    elapsed = time.perf_counter() - start
    return sample / elapsed if elapsed > 0 else float("inf")


def calibrate_for_rate(
    config: MicrobenchConfig,
    target_syncs_per_sec: float,
    inside_fraction: float = 0.25,
    per_sync_overhead_us: float = 3.0,
) -> MicrobenchConfig:
    """Size the busy-waits so the *vanilla* run hits a target rate.

    The paper's microbenchmark runs at 1738–1756 syncs/sec with Dimmunix
    disabled; this reproduces that operating point on the host at hand.
    CPython executes one thread at a time (GIL), matching the paper's
    single-core phone, so the aggregate rate is compute-bound:
    ``rate = 1 / (spin_seconds + overhead)`` regardless of thread count.
    """
    spin_rate = measure_spin_rate()
    budget_seconds = 1.0 / target_syncs_per_sec
    compute_seconds = max(
        budget_seconds - per_sync_overhead_us * 1e-6, budget_seconds * 0.5
    )
    total_spins = int(compute_seconds * spin_rate)
    inside = max(int(total_spins * inside_fraction), 1)
    outside = max(total_spins - inside, 1)
    return config.scaled(inside_spin=inside, outside_spin=outside)


# ----------------------------------------------------------------------
# VM harness
# ----------------------------------------------------------------------

VM_FILE = "Microbench.java"
VM_SITE_LINE_BASE = 100
VM_SITE_LINE_STRIDE = 10


def vm_site_keys(sites: int) -> list[tuple[str, int]]:
    """The monitorenter positions of the generated VM program."""
    return [
        (VM_FILE, VM_SITE_LINE_BASE + index * VM_SITE_LINE_STRIDE + 1)
        for index in range(sites)
    ]


def build_vm_program(config: MicrobenchConfig) -> Program:
    """The per-thread VM program: random lock, busy-wait in/out."""
    builder = ProgramBuilder(VM_FILE)
    builder.set_reg("i", config.iterations_per_thread)
    builder.label("loop")
    for site in range(config.sites):
        builder.call(f"site{site}")
        builder.compute(config.outside_spin)
    builder.loop_dec("i", "loop")
    builder.halt()
    for site in range(config.sites):
        line = VM_SITE_LINE_BASE + site * VM_SITE_LINE_STRIDE
        builder.function(f"site{site}")
        builder.rand("r", config.locks, line=line)
        builder.monitor_enter("mlock", reg="r", line=line + 1)
        builder.compute(config.inside_spin, line=line + 2)
        builder.monitor_exit("mlock", reg="r", line=line + 4)
        builder.ret(line=line + 5)
    return builder.build()


def run_vm_microbench(
    config: MicrobenchConfig,
    dimmunix: bool = True,
    vm_config: Optional[VMConfig] = None,
) -> MicrobenchResult:
    """One virtual-time measurement of the microbenchmark."""
    base = vm_config or VMConfig(
        ticks_per_second=200_000, stack_retrieval_cost=3
    )
    cfg = base if dimmunix else base.vanilla()
    history = None
    if dimmunix:
        history = generate_history(
            vm_site_keys(config.sites),
            config.history_size,
            config.history_mode,
        )
    vm = DalvikVM(cfg, history=history, name=f"vm-microbench-{config.threads}t")
    program = build_vm_program(config)
    for index in range(config.threads):
        vm.spawn(program, name=f"micro-{index}")
    run = vm.run()
    if run.status != "completed":
        raise RuntimeError(f"microbenchmark did not complete: {run.status}")
    return MicrobenchResult(
        mode=MODE_DIMMUNIX if dimmunix else MODE_VANILLA,
        syncs=run.syncs,
        seconds=vm.virtual_seconds(),
        stats=vm.core.stats if vm.core is not None else None,
    )


def run_vm_pair(
    config: MicrobenchConfig, vm_config: Optional[VMConfig] = None
) -> tuple[MicrobenchResult, MicrobenchResult]:
    """(vanilla, dimmunix) virtual-time measurements."""
    vanilla = run_vm_microbench(config, dimmunix=False, vm_config=vm_config)
    immunized = run_vm_microbench(config, dimmunix=True, vm_config=vm_config)
    return vanilla, immunized
