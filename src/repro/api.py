"""The unified Dimmunix facade — one session object for every adapter.

The paper exposes one tiny surface: ``initDimmunix`` plus three hooks
wired into the VM. Our reproduction grew four adapter layers — real
threads (:mod:`repro.runtime`), the platform-wide monkey-patch
(:mod:`repro.runtime.patch`), AST weaving (:mod:`repro.instrument`), the
simulated Dalvik VM (:mod:`repro.dalvik`) and its NDK pthread layer
(:mod:`repro.ndk`) — each constructed its own core, history, and stats.
This module is the ``initDimmunix`` analog for all of them at once:

.. code-block:: python

    import repro

    with repro.immunity() as dx:
        a, b = dx.lock("a"), dx.lock("b")
        ...            # deadlocks detected, then avoided forever

One :class:`Dimmunix` session owns **one config, one history, one event
bus**. Every adapter it creates —

* :meth:`Dimmunix.runtime` — immunized ``threading`` primitives,
* :meth:`Dimmunix.install` / :meth:`Dimmunix.uninstall` /
  :meth:`Dimmunix.patch` — the platform-wide ``threading`` patch,
* :meth:`Dimmunix.weave` — load-time AST instrumentation,
* :meth:`Dimmunix.vm` — a simulated Dalvik process,
* :meth:`Dimmunix.pthreads` — a Dalvik process with NDK pthread
  interception,
* :meth:`Dimmunix.aio` / :meth:`Dimmunix.aio_lock` /
  :meth:`Dimmunix.aio_condition` — immunized ``asyncio`` primitives for
  coroutine tasks (and :meth:`Dimmunix.cross_lock` for mutexes shared
  between threads and tasks on one engine) —

shares those three, so a signature detected under the VM immunizes the
real-thread runtime (and vice versa), and a single subscriber registered
with :meth:`Dimmunix.subscribe` observes the typed event stream of the
whole session, each event tagged with the adapter that emitted it.
"""

from __future__ import annotations

import contextlib
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Optional

from repro.config import DimmunixConfig, InterceptionMode
from repro.core.events import (
    EventBus,
    EventCounter,
    EventLog,
    JsonlWriter,
    Subscription,
)
from repro.core.history import History, open_history
from repro.core.stats import DimmunixStats

if TYPE_CHECKING:
    from repro.aio.bridge import CrossDomainLock
    from repro.aio.runtime import AsyncioDimmunixRuntime
    from repro.dalvik.vm import DalvikVM, VMConfig
    from repro.instrument.weaver import Weaver
    from repro.runtime.runtime import DimmunixRuntime


class Dimmunix:
    """One deadlock-immunity session spanning all adapter layers.

    Construction is lazy: adapters are created on first use, each bound
    to the session's shared :class:`~repro.config.DimmunixConfig`,
    :class:`~repro.core.history.History`, and
    :class:`~repro.core.events.EventBus`. The session keeps an
    always-on :class:`~repro.core.events.EventCounter` (``session.counter``)
    so event-derived totals are available without registering anything.
    """

    def __init__(
        self,
        config: Optional[DimmunixConfig] = None,
        *,
        history: Optional[History] = None,
        events: Optional[EventBus] = None,
        name: str = "dimmunix",
    ) -> None:
        self.name = name
        self.config = config or DimmunixConfig()
        self.events = events if events is not None else EventBus()
        self.history = (
            history
            if history is not None
            else open_history(
                self.config.resolved_history_url(), self.config.max_signatures
            )
        )
        # The session binds the history's save announcements before any
        # adapter core can: session-wide saves are stamped with the
        # session's name, whichever layer triggered the flush.
        self.history.bind_events(self.events, self.name)
        self.counter = EventCounter()
        self._counter_subscription = self.events.subscribe(self.counter)
        self._runtime: Optional["DimmunixRuntime"] = None
        self._aio: Optional["AsyncioDimmunixRuntime"] = None
        self._aio_attached: Optional["AsyncioDimmunixRuntime"] = None
        self._vms: list["DalvikVM"] = []
        self._weavers: list["Weaver"] = []
        self._recorders: list[JsonlWriter] = []
        self._tail_subscriptions: list[Subscription] = []
        self._patched = False
        self._closed = False

    # ------------------------------------------------------------------
    # adapter layer 1: real threads
    # ------------------------------------------------------------------

    def runtime(self) -> "DimmunixRuntime":
        """The session's real-thread runtime (created on first use)."""
        if self._runtime is None:
            from repro.runtime.runtime import DimmunixRuntime

            self._runtime = DimmunixRuntime(
                self.config,
                history=self.history,
                name=f"{self.name}/runtime",
                events=self.events,
            )
        return self._runtime

    def lock(self, name: str = ""):
        """An immunized ``threading.Lock`` replacement (runtime layer)."""
        return self.runtime().lock(name)

    def rlock(self, name: str = ""):
        """An immunized ``threading.RLock`` replacement (runtime layer)."""
        return self.runtime().rlock(name)

    def condition(self, lock=None):
        """An immunized ``threading.Condition`` replacement."""
        return self.runtime().condition(lock)

    # ------------------------------------------------------------------
    # adapter layer 6: asyncio tasks
    # ------------------------------------------------------------------

    def aio(self, *, cross_domain: bool = False) -> "AsyncioDimmunixRuntime":
        """The session's asyncio runtime (created on first use).

        By default the aio layer drives its own engine bound to the
        session's config/history/event-bus — immunity crosses layers
        through the shared antibody pool, and its events are tagged
        ``"<session>/aio"``. With ``cross_domain=True`` it instead
        *joins the thread runtime's engine*, so tasks and OS threads
        form one RAG and mixed thread+task cycles are detected (events
        then carry the runtime layer's source). Both variants are
        cached; they can coexist.
        """
        if cross_domain:
            if self._aio_attached is None:
                from repro.aio.runtime import AsyncioDimmunixRuntime

                self._aio_attached = AsyncioDimmunixRuntime.attached(
                    self.runtime()
                )
            return self._aio_attached
        if self._aio is None:
            from repro.aio.runtime import AsyncioDimmunixRuntime

            self._aio = AsyncioDimmunixRuntime(
                self.config,
                history=self.history,
                name=f"{self.name}/aio",
                events=self.events,
            )
        return self._aio

    def aio_lock(self, name: str = ""):
        """An immunized ``asyncio.Lock`` replacement (aio layer)."""
        return self.aio().lock(name)

    def aio_rlock(self, name: str = ""):
        """An immunized task-reentrant asyncio lock (aio layer)."""
        return self.aio().rlock(name)

    def aio_condition(self, lock=None):
        """An immunized ``asyncio.Condition`` replacement (aio layer)."""
        return self.aio().condition(lock)

    def cross_lock(self, name: str = "") -> "CrossDomainLock":
        """A lock acquirable from both OS threads and asyncio tasks.

        Built on the cross-domain (shared-engine) aio runtime, so a
        mixed thread+task cycle through it is detected and avoided like
        any single-domain deadlock.
        """
        from repro.aio.bridge import CrossDomainLock

        return CrossDomainLock(
            self.runtime(), self.aio(cross_domain=True), name
        )

    # ------------------------------------------------------------------
    # adapter layer 2: the platform-wide patch
    # ------------------------------------------------------------------

    def install(self) -> "DimmunixRuntime":
        """Patch ``threading`` process-wide, bound to this session."""
        from repro.runtime import patch

        runtime = patch.install(self.runtime())
        self._patched = True
        return runtime

    def uninstall(self) -> None:
        """Undo :meth:`install`.

        A no-op when the patch is currently owned by a *different*
        runtime (another session installed over us): clobbering their
        patch would silently strip that session's immunity.
        """
        from repro.runtime import patch

        if patch.installed_runtime() is self._runtime:
            patch.uninstall()
        self._patched = False

    @contextlib.contextmanager
    def patch(self) -> Iterator["DimmunixRuntime"]:
        """Scope-limited platform-wide immunity bound to this session."""
        from repro.runtime import patch as patch_module

        with patch_module.immunized(self.runtime()) as runtime:
            yield runtime

    # ------------------------------------------------------------------
    # adapter layer 3: load-time instrumentation
    # ------------------------------------------------------------------

    def weave(self, selective: bool = False, selector=None) -> "Weaver":
        """A weaver bound to this session's runtime (§3.1 alternative).

        ``selective=True`` guards only positions already in the shared
        history — the minimal-overhead mode.
        """
        from repro.instrument.weaver import Weaver

        weaver = Weaver(
            runtime=self.runtime(), selective=selective, selector=selector
        )
        self._weavers.append(weaver)
        return weaver

    # ------------------------------------------------------------------
    # adapter layers 4 + 5: the simulated VM and its NDK pthread layer
    # ------------------------------------------------------------------

    def vm(
        self,
        vm_config: Optional["VMConfig"] = None,
        name: Optional[str] = None,
        **vm_overrides,
    ) -> "DalvikVM":
        """A simulated Dalvik process sharing this session's immunity.

        The VM's Dimmunix config *is* the session config (overriding
        whatever ``vm_config.dimmunix`` said); extra keyword arguments
        override other :class:`~repro.dalvik.vm.VMConfig` fields, e.g.
        ``dx.vm(seed=7, quantum=4)``.
        """
        from repro.dalvik.vm import DalvikVM, VMConfig

        if "dimmunix" in vm_overrides:
            raise ValueError(
                "a session VM's Dimmunix config is the session config; "
                "configure the Dimmunix session (or use DalvikVM directly)"
            )
        base = vm_config if vm_config is not None else VMConfig()
        config = base.evolve(dimmunix=self.config, **vm_overrides)
        vm = DalvikVM(
            config,
            history=self.history,
            name=name or f"{self.name}/vm-{len(self._vms)}",
            events=self.events,
        )
        self._vms.append(vm)
        return vm

    def pthreads(
        self,
        mode: InterceptionMode = InterceptionMode.NATIVE_ONLY,
        vm_config: Optional["VMConfig"] = None,
        name: Optional[str] = None,
        **vm_overrides,
    ) -> "DalvikVM":
        """A Dalvik process with NDK pthread interception enabled (§4).

        Returns the VM; its ``.pthreads`` attribute is the intercepted
        POSIX mutex layer. The default ``NATIVE_ONLY`` is the paper's
        proposal; ``ALWAYS`` reproduces the naive double interception.
        """
        return self.vm(
            vm_config=vm_config,
            name=name,
            native_interception=mode,
            **vm_overrides,
        )

    # ------------------------------------------------------------------
    # the event stream
    # ------------------------------------------------------------------

    def subscribe(
        self, callback, *, kinds=None, source=None
    ) -> Subscription:
        """Observe the session-wide typed event stream.

        One subscription sees events from every adapter in the session;
        filter by ``kinds`` (event kind strings or classes) and/or
        ``source`` (an adapter name such as ``"<session>/runtime"``).
        """
        return self.events.subscribe(callback, kinds=kinds, source=source)

    def unsubscribe(self, subscription) -> bool:
        return self.events.unsubscribe(subscription)

    def tail(self, capacity: int = 100_000) -> EventLog:
        """Subscribe and return an in-memory log of session events.

        The log stays subscribed for the session's lifetime and is
        detached by :meth:`close`.
        """
        log = EventLog(capacity)
        self._tail_subscriptions.append(self.events.subscribe(log))
        return log

    def record(self, path, flush_every: int = 1) -> JsonlWriter:
        """Stream session events to ``path`` as JSON lines.

        The file is the input format of the ``dimmunix-events`` CLI;
        the writer is closed by :meth:`close`.
        """
        writer = JsonlWriter(path, flush_every=flush_every)
        self.events.subscribe(writer)
        self._recorders.append(writer)
        return writer

    # ------------------------------------------------------------------
    # session-wide state
    # ------------------------------------------------------------------

    @property
    def stats(self) -> DimmunixStats:
        """Aggregated counters across every adapter in the session."""
        merged = DimmunixStats()
        if self._runtime is not None:
            merged.merge(self._runtime.stats)
        if self._aio is not None:
            merged.merge(self._aio.stats)
        # The attached aio runtime shares the thread runtime's core, so
        # its traffic is already in the runtime's counters.
        for vm in self._vms:
            if vm.core is not None:
                merged.merge(vm.core.stats)
        return merged

    @property
    def components(self) -> dict[str, object]:
        """The adapters this session has constructed so far, by name."""
        named: dict[str, object] = {}
        if self._runtime is not None:
            named[self._runtime.name] = self._runtime
        if self._aio is not None:
            named[self._aio.name] = self._aio
        if self._aio_attached is not None:
            named[self._aio_attached.name] = self._aio_attached
        for vm in self._vms:
            named[vm.name] = vm
        return named

    def save_history(self, path: Optional[Path | str] = None) -> Path:
        """Persist the shared history (defaults to the backing location).

        With no ``path``, a file-backed history (``jsonl://`` /
        ``sqlite://``) flushes through its store; an explicit ``path``
        snapshots to that file in the legacy format. Either way the
        history emits exactly one ``HistorySavedEvent``.
        """
        return self.history.persist(
            path
            if path is not None
            else (self.history.location or self.config.history_location())
        )

    def sync(self) -> int:
        """Pull fleet-shared antibodies into this process's index, now.

        The manual trigger of the fleet sync layer: with a
        :class:`~repro.fleet.pump.SyncPump` attached (see
        ``DimmunixConfig.fleet_sync_interval``) it runs one pump cycle —
        counted, and published as a ``FleetSyncEvent`` if anything
        happened; without one it refreshes the store directly. Returns
        how many new signatures arrived; 0 for non-shared backends
        (``mem://``, ``jsonl://``).
        """
        pump = self.history.sync_pump
        if pump is not None:
            return pump.sync_now()
        refresh = getattr(self.history.store, "refresh", None)
        return refresh() if refresh is not None else 0

    def _cores(self):
        """Each distinct engine this session has constructed.

        The attached aio runtime shares the thread runtime's core, so
        it is intentionally absent — including it would double-count
        its telemetry and RAG.
        """
        if self._runtime is not None:
            yield self._runtime.name, self._runtime.core
        if self._aio is not None:
            yield self._aio.name, self._aio.core
        for vm in self._vms:
            if vm.core is not None:
                yield vm.name, vm.core

    def telemetry_report(self) -> dict:
        """The session's telemetry snapshot as a plain-JSON report.

        Per-phase log2 latency histograms merged across every adapter
        core (empty unless the config has ``telemetry=True``) plus the
        session's aggregated counters. The shape is what
        :func:`repro.telemetry.prometheus.render_report` and
        ``dimmunix-report metrics <file.json>`` consume, so
        ``json.dump(dx.telemetry_report(), fh)`` is a complete
        metrics export.
        """
        from repro.telemetry.histogram import LogHistogram

        merged: dict[str, LogHistogram] = {}
        for _name, core in self._cores():
            collector = core.telemetry
            if collector is None:
                continue
            for phase, histogram in collector.snapshot().items():
                if phase in merged:
                    merged[phase].merge(histogram)
                else:
                    merged[phase] = histogram
        report = {
            "phases": {
                phase: merged[phase].to_json()
                for phase in sorted(merged)
                if merged[phase].count
            },
            "counters": self.stats.snapshot(),
        }
        if self.config.watchdog:
            health = self.health()
            report["gauges"] = {
                "oldest_waiter_age_ns": health["oldest_waiter_age_ns"],
                "livelock_suspected_now": health["suspected_now"],
                "watchdog_scans": health["scans"],
            }
        return report

    def metrics_text(self) -> str:
        """:meth:`telemetry_report` as Prometheus text exposition."""
        from repro.telemetry.prometheus import render_report

        return render_report(self.telemetry_report())

    def rag_dump(self) -> dict[str, dict]:
        """An on-demand RAG snapshot of every adapter core, by name.

        Each value is :meth:`~repro.core.engine.DimmunixCore.rag_dump`
        output — threads (with held/requesting/yielding state and
        request age in ns), locks, and wait-for edges — renderable with
        :func:`repro.telemetry.ragdump.render_dot`.
        """
        return {name: core.rag_dump() for name, core in self._cores()}

    def health(self) -> dict:
        """The session's liveness health, merged across adapter cores.

        With the watchdog on (``DimmunixConfig.watchdog=True``) each
        core contributes its :class:`~repro.watchdog.LivenessWatchdog`
        health (as of that core's last scan); without one, a live RAG
        read still reports the oldest waiter age, so the surface works
        either way. Plain JSON — ``dimmunix-report health <file.json>``
        renders a dump of this directly, and the fleet ``metrics`` op
        aggregates the same per-core dicts across clients.
        """
        from repro.telemetry.ragdump import rag_snapshot

        cores: dict[str, dict] = {}
        oldest = 0
        suspected_now = 0
        scans = 0
        for name, core in self._cores():
            watchdog = core.watchdog
            if watchdog is not None:
                entry = watchdog.health()
            else:
                try:
                    snapshot = rag_snapshot(core)
                except Exception:
                    snapshot = {"threads": []}
                ages = [
                    thread["request_age_ns"]
                    for thread in snapshot.get("threads", ())
                    if thread.get("request_age_ns") is not None
                ]
                entry = {
                    "scans": 0,
                    "oldest_waiter_age_ns": max(ages, default=0),
                    "suspected_now": 0,
                    "livelock_suspects": 0,
                    "watchdog_mitigations": 0,
                }
            cores[name] = entry
            oldest = max(oldest, entry.get("oldest_waiter_age_ns") or 0)
            suspected_now += entry.get("suspected_now", 0)
            scans += entry.get("scans", 0)
        stats = self.stats
        return {
            "watchdog": bool(self.config.watchdog),
            "oldest_waiter_age_ns": oldest,
            "suspected_now": suspected_now,
            "scans": scans,
            "livelock_suspects": stats.livelock_suspects,
            "watchdog_mitigations": stats.watchdog_mitigations,
            "cores": cores,
        }

    def close(self) -> None:
        """Tear the session down: undo the patch, detach every
        session-owned subscriber, flush recorders.

        Matters when the bus was passed in from outside: a closed
        session must stop consuming events published by its successors.
        """
        if self._closed:
            return
        self._closed = True
        if self._patched:
            self.uninstall()
        for writer in self._recorders:
            self.events.unsubscribe(writer)
            writer.close()
        for subscription in self._tail_subscriptions:
            self.events.unsubscribe(subscription)
        self.events.unsubscribe(self._counter_subscription)
        # The adapter cores' stats subscribers too — on an externally
        # owned bus they would otherwise keep counting (same-named
        # successor sessions share a source string) and leak one dead
        # subscription per core. The attached aio runtime must detach
        # its waker before the thread runtime's core goes.
        if self._aio_attached is not None:
            self._aio_attached.close()
        if self._aio is not None:
            self._aio.close()
        if self._runtime is not None:
            self._runtime.core.detach_events()
        for vm in self._vms:
            if vm.core is not None:
                vm.core.detach_events()
        # The shutdown flush rides the persister teardown (a final
        # flush + worker join) — gated on auto_save by construction,
        # since no persister exists otherwise. The bus binding is
        # released too, but the history itself stays usable: carrying
        # it into a successor session is a blessed pattern.
        self.history.detach_sync_pump()
        self.history.detach_persister()
        self.history.unbind_events(self.events)

    def __enter__(self) -> "Dimmunix":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        layers = ", ".join(self.components) or "no adapters yet"
        return (
            f"<Dimmunix {self.name}: {len(self.history)} signature(s), "
            f"{self.events.published} event(s), {layers}>"
        )


@contextlib.contextmanager
def immunity(
    config: Optional[DimmunixConfig] = None,
    *,
    history: Optional[History] = None,
    events: Optional[EventBus] = None,
    patch: bool = False,
    name: str = "immunity",
    **config_overrides,
) -> Iterator[Dimmunix]:
    """Deadlock immunity for a scope — the five-line quickstart.

    Creates a :class:`Dimmunix` session (``config_overrides`` build or
    evolve the config, e.g. ``immunity(history_path=p)``), optionally
    installs the platform-wide ``threading`` patch (``patch=True``), and
    tears everything down on exit.
    """
    if config is None:
        resolved = DimmunixConfig(**config_overrides)
    elif config_overrides:
        resolved = config.evolve(**config_overrides)
    else:
        resolved = config
    session = Dimmunix(resolved, history=history, events=events, name=name)
    try:
        if patch:
            session.install()
        yield session
    finally:
        session.close()


__all__ = ["Dimmunix", "immunity"]
