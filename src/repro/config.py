"""Configuration for a Dimmunix instance.

One :class:`DimmunixConfig` parameterizes one per-process Dimmunix — the
paper's per-process instance initialized by ``initDimmunix`` on every
Zygote fork. The defaults follow Android Dimmunix: outer call stacks of
depth 1, starvation detection on, signatures persisted as soon as they are
discovered.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from pathlib import Path


class InterceptionMode(enum.Enum):
    """Who sees POSIX-thread mutex operations in the substrate VM (§4).

    ``OFF`` is shipped Android Dimmunix — native synchronization is
    invisible. ``NATIVE_ONLY`` is the paper's proposal: intercept
    pthread locking only while native (JNI) code executes.``ALWAYS`` is
    the naive hook §4 warns against: the VM's own pthread use (the
    mutexes backing Java monitors) gets intercepted too, double-counting
    every acquisition. Defined here (dependency-free) so both the VM
    config and :mod:`repro.ndk` can import it without cycles.
    """

    OFF = "off"
    NATIVE_ONLY = "native-only"
    ALWAYS = "always"


class MatchCapPolicy(enum.Enum):
    """What to do when an instantiation check exhausts its step budget.

    The §2.2 instantiation matcher runs on every ``monitorenter``. Real
    signatures have 2–3 entries and match in a handful of steps, but the
    exact search is exponential in signature *length*: an adversarial
    N-entry signature whose outer positions collapse onto one line can
    otherwise wedge a request for minutes. ``match_step_budget`` bounds
    the search; this policy decides what the capped check reports.

    ``GRANT`` preserves exact-search semantics on the capped result: a
    search that could not *prove* instantiability within the budget is
    treated as "not instantiable" and the lock is granted. Avoidance may
    miss an adversarially long signature, but it is never spuriously
    triggered, and liveness is untouched.

    ``WEAK`` adopts the weak-deadlock-sets relaxation (Oriolo & Russo
    Russo, arXiv:2410.05175): a capped check falls back to a polynomial
    over-approximation of instantiability — per-slot queue occupancy
    plus Hall-style distinct-thread/distinct-lock counting across the
    signature's slots. If the over-approximation says "instantiable",
    the thread yields. Avoidance can then over-park (the counting may
    admit states the exact search would refute), but no recorded
    deadlock is ever re-entered through a capped check; starvation
    detection and the yield timeout bound the cost of over-parking.
    """

    GRANT = "grant"
    WEAK = "weak"


class WatchdogPolicy(enum.Enum):
    """What the liveness watchdog does when a suspect stays stuck.

    Android's llkd escalates sample → mitigate (kill) → panic; our
    ladder is observe → ``LivelockSuspectedEvent`` → mitigate. This
    policy picks the mitigation rung. ``REPORT`` only emits the
    ``WatchdogMitigationEvent`` (observe-and-alert — the production
    default posture). ``BREAK_YOUNGEST`` additionally reuses the
    starvation-override machinery: the *youngest* suspect (smallest
    request age — breaking it loses the least progress) that is parked
    by avoidance gets a one-shot bypass and a wake, exactly like the
    yield-timeout safety net. A physically blocked suspect is never
    touched — there is nothing safe to break.
    """

    REPORT = "report"
    BREAK_YOUNGEST = "break_youngest"


# Default per-check step budget for the instantiation matcher. Generous:
# real 2–3-entry signatures match (or refute) in tens of steps, so only
# an adversarial signature shape can approach this — and a capped check
# still returns in single-digit milliseconds.
DEFAULT_MATCH_STEP_BUDGET = 100_000


class DetectionPolicy(enum.Enum):
    """What to do at the moment a deadlock cycle is detected.

    ``BLOCK`` is paper-faithful: the signature is recorded and the threads
    are left to deadlock (the phone froze once; immunity starts at the next
    boot). ``RAISE`` raises :class:`~repro.errors.DeadlockDetectedError` in
    the requesting thread, and ``BREAK`` denies the acquisition so the
    caller can retry — both are practical modes for hosts that cannot
    tolerate a hang (such as a test suite).
    """

    BLOCK = "block"
    RAISE = "raise"
    BREAK = "break"


@dataclass(frozen=True)
class DimmunixConfig:
    """Tunables for one Dimmunix instance.

    Attributes:
        stack_depth: Number of innermost frames kept in outer call stacks.
            The paper uses 1; larger depths trade stack-retrieval cost for
            fewer avoidance false positives (ablation A1 in DESIGN.md).
        detection_policy: Behaviour at detection time; see
            :class:`DetectionPolicy`.
        history_url: DSN selecting the history backend — ``mem://``,
            ``jsonl:///path`` (append-only log, legacy-file compatible),
            or ``sqlite:///path`` (indexed, multi-process-safe). ``None``
            defers to ``history_path``.
        history_path: Legacy spelling: a file backing the persistent
            deadlock history (served by the ``jsonl://`` backend), or
            ``None`` for an in-memory history. Mapped onto
            ``history_url`` by :meth:`resolved_history_url`; setting both
            is an error.
        auto_save: Persist new signatures as soon as they are added (the
            paper saves at detection time so the signature survives the
            ensuing freeze/reboot). Since the store redesign the write is
            write-behind — batched off the lock path by the
            :class:`~repro.core.store.WriteBehindPersister` — rather than
            synchronous in the engine.
        starvation_detection: Detect avoidance-induced deadlocks via the
            extended RAG (yield edges) and record starvation signatures.
        yield_timeout: Safety-net timeout (seconds) for real-thread
            adapters: a thread parked on a signature longer than this is
            treated as starved. ``None`` disables the net. The simulated VM
            never needs it — starvation is always caught structurally.
        aio_yield_poll: Optional re-request cadence (seconds) for
            cooperatively parked asyncio tasks. ``None`` (the default)
            parks a yielding task until a waker notifies it or
            ``yield_timeout`` fires; a positive value makes the task wake
            and re-run avoidance at this interval *without* consuming a
            starvation bypass, bounding wake latency when the engine is
            driven from contexts that cannot reach this adapter's waker
            (e.g. a foreign runtime on a separate global lock). Keeps the
            weak-deadlock-sets property that the per-acquisition check
            stays cheap: a poll is one extra ``request`` call.
        match_step_budget: Per-check step budget for the §2.2
            instantiation matcher (and for the starvation-relief recheck
            that runs the same matcher). ``0`` means unbounded — the
            pre-budget exact-search behaviour. Each step is one queue
            entry tried by the backtracking search; the VM's cost model
            charges ``match_step_cost`` per step, so the budget also
            bounds the virtual-time cost of one check.
        match_cap_policy: What a check that exhausts the budget reports;
            see :class:`MatchCapPolicy`. Accepts the enum or its string
            value (``"grant"`` / ``"weak"``). Every cap is surfaced as a
            :class:`~repro.core.events.MatchCappedEvent` and counted in
            ``stats.match_caps`` (plus ``stats.weak_fallbacks`` under
            ``WEAK``).
        static_ids: Use caller-provided static synchronization-site ids
            instead of walking the Python stack (the compiler-assisted
            optimization sketched in §4; ablation A2).
        max_signatures: Upper bound on history size; adding beyond it
            raises, as a guard against signature explosion.
        fleet_sync_interval: Period (seconds) of the fleet antibody
            sync pump. When set (and the history backend is shared —
            ``sqlite://``, ``shard://``, or ``tcp://``), the engine
            attaches a :class:`~repro.fleet.pump.SyncPump`: a
            background thread that refreshes the in-memory index from
            the shared pool every interval and after every history
            save, so immunity earned by *other* processes arrives
            without a restart. Each non-trivial cycle is surfaced as a
            :class:`~repro.core.events.FleetSyncEvent` and accumulated
            into ``stats.sync_pulls`` / ``sync_pushed`` /
            ``sync_failures`` / ``spill_replayed``. ``None`` (the
            default) attaches no pump — exactly the pre-fleet
            behaviour.
        telemetry: Attach a
            :class:`~repro.telemetry.TelemetryCollector` to the engine
            and record per-phase latency histograms (``capture``,
            ``glock_wait``, ``match``, ``acquire``, ``yield_park``,
            ``store_flush``, ``sync``) along the request path, exposed
            through ``Dimmunix.telemetry_report()`` /
            ``dimmunix-report metrics`` and the fleet ``metrics`` op.
            Off (the default) the collector is ``None`` and every
            instrumented site costs exactly one attribute check — held
            within noise of the untelemetered seed by the E1 overhead
            gate.
        watchdog: Attach a :class:`repro.watchdog.LivenessWatchdog` to
            every engine this config builds — llkd-style forward-progress
            monitoring for the failures cycle detection cannot see
            (yield storms, try-lock spins, starved waiters). The
            watchdog is a bus subscriber plus a periodic scanner thread;
            it adds **zero** code to the lock path, so the disabled
            default costs nothing and the enabled cost is off-path.
            Detections surface as ``LivelockSuspectedEvent`` /
            ``WatchdogMitigationEvent`` and in ``stats.livelock_suspects``
            / ``stats.watchdog_mitigations``.
        watchdog_scan_interval: Seconds between watchdog scans (llkd's
            ``ro.llk_sample_ms``). Each scan snapshots the RAG (oldest
            waiter, per-node ``request_since_ns`` ages) and evaluates
            the event windows.
        watchdog_stall_age: A node whose pending request is older than
            this many seconds is suspected as a stalled waiter.
        watchdog_storm_window: Length (seconds) of the per-node sliding
            event window the watchdog keeps from its bus subscription.
        watchdog_storm_ratio: Yield/request churn threshold: a node with
            at least this many yields (or, with no parks at all,
            requests) and **zero** acquisitions inside the storm window
            is suspected as a yield storm / try-lock spin.
        watchdog_policy: Mitigation rung of the escalation ladder; see
            :class:`WatchdogPolicy`. Accepts the enum or its string
            value (``"report"`` / ``"break_youngest"``).
        position_cache: Cache resolved positions per thread, keyed on
            the application caller frame's ``(code object, f_lasti)``,
            so a repeat acquisition at a known call site skips the
            ``sys._getframe`` walk and position interning entirely (one
            frame probe + one dict hit). Invalidation is safe against
            code-object id reuse (weakref death callbacks bump a global
            generation). Only engages for ``stack_depth == 1`` dynamic
            capture — deeper stacks and ``static_ids`` mode bypass the
            cache. On by default; turning it off restores the exact
            per-acquire walk (and disables ``fast_path``, which needs a
            pre-resolved position).
        fast_path: Take a won non-blocking probe on a position with
            zero recorded signatures without running the glock'd
            detection/avoidance machinery — the paper's "a few dict
            probes" common case. The queue entry and RAG hold edge are
            still installed (under a short glock section), stats stay
            exact, and the position falls back to the exact path the
            moment history, fleet sync, or predictions make it hot
            (``stats.fastpath_demotions``). A contended probe always
            falls back to the exact path, so blocking requests — the
            only ones that can close a cycle — are never exempted.
            Requires ``position_cache``. On by default.
        predicted_ttl_runs: Demotion window for *predicted* antibodies
            (seeded by ``dimmunix-lint`` or the trace miner rather than
            earned at a real deadlock). A predicted signature that
            survives this many runs without ever matching is dropped at
            engine start-up and counted in ``stats.predictions_expired``
            — static false positives cannot bloat the avoidance hot
            path forever. ``0`` (the default) keeps predictions
            indefinitely. Promoted and earned antibodies never expire.
        enabled: When false, adapters pass lock operations straight
            through. This is how "vanilla" baselines are measured.
    """

    stack_depth: int = 1
    detection_policy: DetectionPolicy = DetectionPolicy.RAISE
    history_path: Path | None = None
    history_url: str | None = None
    auto_save: bool = True
    starvation_detection: bool = True
    yield_timeout: float | None = 2.0
    aio_yield_poll: float | None = None
    match_step_budget: int = DEFAULT_MATCH_STEP_BUDGET
    match_cap_policy: MatchCapPolicy = MatchCapPolicy.GRANT
    static_ids: bool = False
    max_signatures: int = 4096
    fleet_sync_interval: float | None = None
    telemetry: bool = False
    watchdog: bool = False
    watchdog_scan_interval: float = 0.25
    watchdog_stall_age: float = 1.0
    watchdog_storm_window: float = 1.0
    watchdog_storm_ratio: int = 8
    watchdog_policy: WatchdogPolicy = WatchdogPolicy.REPORT
    position_cache: bool = True
    fast_path: bool = True
    predicted_ttl_runs: int = 0
    enabled: bool = True
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.stack_depth < 1:
            raise ValueError(f"stack_depth must be >= 1, got {self.stack_depth}")
        if self.max_signatures < 1:
            raise ValueError(
                f"max_signatures must be >= 1, got {self.max_signatures}"
            )
        if self.yield_timeout is not None and self.yield_timeout <= 0:
            raise ValueError(
                f"yield_timeout must be positive or None, got {self.yield_timeout}"
            )
        if self.aio_yield_poll is not None and self.aio_yield_poll <= 0:
            raise ValueError(
                f"aio_yield_poll must be positive or None, got {self.aio_yield_poll}"
            )
        if (
            self.fleet_sync_interval is not None
            and self.fleet_sync_interval <= 0
        ):
            raise ValueError(
                "fleet_sync_interval must be positive or None, got "
                f"{self.fleet_sync_interval}"
            )
        for knob in (
            "watchdog_scan_interval",
            "watchdog_stall_age",
            "watchdog_storm_window",
        ):
            if getattr(self, knob) <= 0:
                raise ValueError(
                    f"{knob} must be positive, got {getattr(self, knob)}"
                )
        if self.watchdog_storm_ratio < 1:
            raise ValueError(
                "watchdog_storm_ratio must be >= 1, got "
                f"{self.watchdog_storm_ratio}"
            )
        if not isinstance(self.watchdog_policy, WatchdogPolicy):
            # Same operator-facing coercion as match_cap_policy: the
            # policy travels as a plain string; a typo fails here.
            object.__setattr__(
                self, "watchdog_policy", WatchdogPolicy(self.watchdog_policy)
            )
        if self.predicted_ttl_runs < 0:
            raise ValueError(
                "predicted_ttl_runs must be >= 0 (0 = never expire), got "
                f"{self.predicted_ttl_runs}"
            )
        if self.match_step_budget < 0:
            raise ValueError(
                "match_step_budget must be >= 0 (0 = unbounded), got "
                f"{self.match_step_budget}"
            )
        if not isinstance(self.match_cap_policy, MatchCapPolicy):
            # Operator-facing coercion: the policy travels through DSN-ish
            # config surfaces (immunity(match_cap_policy="weak"), CLIs) as
            # a plain string; a typo fails here, at configuration time.
            object.__setattr__(
                self, "match_cap_policy", MatchCapPolicy(self.match_cap_policy)
            )
        if self.history_url is not None:
            if self.history_path is not None:
                raise ValueError(
                    "set history_url or history_path, not both "
                    f"(got {self.history_url!r} and {self.history_path!r})"
                )
            # Validate the DSN eagerly — a typo'd scheme should fail at
            # configuration time, not at first detection.
            from repro.core.store.url import parse_history_url

            parse_history_url(self.history_url)

    def resolved_history_url(self) -> str | None:
        """The effective history DSN: ``history_url``, or the legacy
        ``history_path`` mapped onto the ``jsonl://`` backend, or
        ``None`` (in-memory)."""
        if self.history_url is not None:
            return self.history_url
        if self.history_path is not None:
            from repro.core.store.url import format_history_url

            return format_history_url("jsonl", self.history_path)
        return None

    def history_location(self) -> Path | None:
        """The file backing the history, or ``None`` for ``mem://``."""
        url = self.resolved_history_url()
        if url is None:
            return None
        from repro.core.store.url import parse_history_url

        return parse_history_url(url).path

    def evolve(self, **changes) -> "DimmunixConfig":
        """A copy with the given fields replaced (configs are immutable).

        The one blessed way to derive configs — call sites should use
        this instead of hand-rolling ``dataclasses.replace``.
        """
        return replace(self, **changes)

    def with_overrides(self, **changes) -> "DimmunixConfig":
        """Deprecated alias of :meth:`evolve` (kept for compatibility)."""
        import warnings

        warnings.warn(
            "DimmunixConfig.with_overrides is deprecated; use evolve()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.evolve(**changes)

    @classmethod
    def paper_faithful(cls, history_path: Path | None = None) -> "DimmunixConfig":
        """The configuration matching Android Dimmunix on the Nexus One."""
        return cls(
            stack_depth=1,
            detection_policy=DetectionPolicy.BLOCK,
            history_path=history_path,
            auto_save=True,
            starvation_detection=True,
        )

    @classmethod
    def disabled(cls) -> "DimmunixConfig":
        """A pass-through configuration used for vanilla baselines."""
        return cls(enabled=False)
