"""Simulated VM threads.

Mirrors Dalvik's ``struct Thread`` after the paper's change: the thread
carries its Dimmunix RAG node and the pre-allocated ``stackBuffer`` used
by ``dvmGetCallStack``. On top of that it is a tiny interpreter context:
program counter, registers, a call stack of program frames (so outer call
stacks deeper than 1 are meaningful for the ablations), and the
continuation state used while blocked in a monitor operation.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Optional

from repro.core.callstack import CallStack, Frame

if TYPE_CHECKING:
    from repro.core.node import ThreadNode
    from repro.core.signature import DeadlockSignature
    from repro.dalvik.monitor import Monitor
    from repro.dalvik.program import Program


class ThreadState(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"        # in a monitor's entry queue
    YIELDING = "yielding"      # parked by Dimmunix avoidance
    WAITING = "waiting"        # in a wait set (Object.wait)
    SLEEPING = "sleeping"      # timed sleep, wakes at a virtual deadline
    TERMINATED = "terminated"
    FAULTED = "faulted"        # died with an error (RAISE policy, bad program)


class Registers:
    """Per-thread registers with process-shared globals.

    Names starting with ``g:`` resolve in the owning VM's global table —
    the minimal shared mutable state (message-queue depths, counters)
    that lets Looper-style producer/consumer programs exist without a
    full field/heap ISA. All access happens on the single simulated core,
    so no synchronization is needed at the Python level.
    """

    __slots__ = ("_local", "_globals")

    def __init__(self, globals_table: Optional[dict[str, int]] = None) -> None:
        self._local: dict[str, int] = {}
        self._globals = globals_table if globals_table is not None else {}

    def _table(self, name: str) -> dict[str, int]:
        return self._globals if name.startswith("g:") else self._local

    def __getitem__(self, name: str) -> int:
        return self._table(name)[name]

    def __setitem__(self, name: str, value: int) -> None:
        self._table(name)[name] = value

    def get(self, name: str, default: int = 0) -> int:
        return self._table(name).get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._table(name)

    def update(self, values: dict[str, int]) -> None:
        for name, value in values.items():
            self[name] = value


class VMThread:
    """One simulated thread executing a :class:`~repro.dalvik.program.Program`."""

    _ids = itertools.count(1)

    def __init__(
        self,
        program: "Program",
        name: str = "",
        node: Optional["ThreadNode"] = None,
        globals_table: Optional[dict[str, int]] = None,
    ) -> None:
        self.thread_id: int = next(VMThread._ids)
        # Small per-VM id used in thin lock words (assigned by spawn).
        self.local_id: int = 0
        self.name = name or f"vmthread-{self.thread_id}"
        self.program = program
        self.pc = program.entry
        self.registers = Registers(globals_table)
        self.state = ThreadState.RUNNABLE
        self.node = node
        # The paper's per-thread stackBuffer: reused on every
        # dvmGetCallStack so the hot path never allocates.
        self.stack_buffer: list[Frame] = []
        # Program-level call stack (CALL/RET frames), innermost last.
        self.frames: list[tuple[str, int]] = []  # (function, return pc)
        # Continuation while blocked inside a monitor operation:
        #   ("enter", monitor)                  — waiting to own it
        #   ("reacquire", monitor, recursion)   — post-wait reacquisition
        self.continuation: Optional[tuple] = None
        self.yielding_on: Optional["DeadlockSignature"] = None
        self.wakeup_deadline: Optional[int] = None
        self.waiting_monitor: Optional["Monitor"] = None
        self.fault: Optional[BaseException] = None
        # accounting
        self.sync_count = 0
        self.wait_count = 0
        self.wait_reacquisitions = 0
        self.compute_ticks = 0
        self.cpu_ticks = 0
        self.blocked_ticks = 0

    # ------------------------------------------------------------------
    # call-stack capture (dvmGetCallStack)
    # ------------------------------------------------------------------

    def capture_stack(self, depth: int) -> CallStack:
        """Copy up to ``depth`` frames into the stack buffer and build the
        call stack for the current instruction.

        The innermost frame is the current instruction's source location;
        outer frames come from the CALL chain. The buffer is cleared and
        refilled in place — the zero-allocation discipline of §4.
        """
        self.stack_buffer.clear()
        instr = self.program.instructions[self.pc]
        self.stack_buffer.append(
            Frame(instr.loc.file, instr.loc.line, instr.loc.function)
        )
        if depth > 1:
            for function, return_pc in reversed(self.frames):
                if len(self.stack_buffer) >= depth:
                    break
                call_instr = self.program.instructions[return_pc - 1]
                self.stack_buffer.append(
                    Frame(
                        call_instr.loc.file,
                        call_instr.loc.line,
                        function,
                    )
                )
        return CallStack(tuple(self.stack_buffer))

    # ------------------------------------------------------------------
    # state helpers
    # ------------------------------------------------------------------

    def is_live(self) -> bool:
        return self.state not in (ThreadState.TERMINATED, ThreadState.FAULTED)

    def is_schedulable(self) -> bool:
        return self.state == ThreadState.RUNNABLE

    def __repr__(self) -> str:
        return (
            f"<VMThread {self.name} pc={self.pc} state={self.state.value} "
            f"syncs={self.sync_count}>"
        )
