"""The substrate VM's instruction set.

A deliberately small, DEX-flavoured set: enough to express synchronized
blocks and methods (``MONITOR_ENTER`` / ``MONITOR_EXIT``), ``Object.wait``
/ ``notify``, busy-wait computation (the paper's microbenchmark uses busy
waits, not sleeps, precisely so overhead is not hidden), counted loops,
and calls (so outer call stacks deeper than one frame exist for the
depth ablation).

Each instruction carries a :class:`SourceLoc` — the program position that
becomes a Dimmunix position when the instruction is a monitor operation.
Two instructions with the same (file, line) are the same synchronization
site, which is how workloads control signature matching precisely.

Monitor operands name heap objects. When ``reg`` is given, the effective
object name is ``f"{obj}{registers[reg]}"`` — the indexed form used by the
"random lock objects" microbenchmark (§5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class SourceLoc:
    """Where an instruction "is" in the simulated program source."""

    file: str
    line: int
    function: str = "main"

    def __str__(self) -> str:
        return f"{self.file}:{self.line}({self.function})"


_UNPLACED = SourceLoc("<unplaced>", 0)


@dataclass
class Instr:
    """Base class; ``loc`` is assigned by the program builder."""

    loc: SourceLoc = field(default=_UNPLACED, init=False, repr=False)

    def place(self, loc: SourceLoc) -> "Instr":
        self.loc = loc
        return self


@dataclass
class MonitorEnter(Instr):
    obj: str
    reg: Optional[str] = None


@dataclass
class MonitorExit(Instr):
    obj: str
    reg: Optional[str] = None


@dataclass
class Wait(Instr):
    """``Object.wait()`` — optionally timed (virtual ticks)."""

    obj: str
    timeout: Optional[int] = None
    reg: Optional[str] = None


@dataclass
class Notify(Instr):
    """``Object.notify()`` / ``notifyAll()``."""

    obj: str
    wake_all: bool = False
    reg: Optional[str] = None


@dataclass
class NativeLock(Instr):
    """``pthread_mutex_lock`` issued from native (JNI/NDK) code.

    Whether Dimmunix sees it depends on the VM's native-interception
    mode (§4's closing paragraph): shipped Android Dimmunix does not
    intercept native synchronization at all.
    """

    obj: str
    reg: Optional[str] = None


@dataclass
class NativeUnlock(Instr):
    """``pthread_mutex_unlock`` issued from native (JNI/NDK) code."""

    obj: str
    reg: Optional[str] = None


@dataclass
class Compute(Instr):
    """Busy-wait for ``ticks`` virtual ticks (consumes CPU)."""

    ticks: int


@dataclass
class Sleep(Instr):
    """Timed sleep for ``ticks`` (does not consume CPU)."""

    ticks: int


@dataclass
class SetReg(Instr):
    reg: str
    value: int


@dataclass
class AddReg(Instr):
    reg: str
    delta: int


@dataclass
class Rand(Instr):
    """``reg = uniform(0, bound)`` from the VM's seeded RNG."""

    reg: str
    bound: int


@dataclass
class Jump(Instr):
    label: str
    target: int = -1  # resolved by the builder


@dataclass
class LoopDec(Instr):
    """``reg -= 1; if reg > 0: goto label`` — a counted loop."""

    reg: str
    label: str
    target: int = -1


@dataclass
class BranchZero(Instr):
    """``if reg == 0: goto label`` — the conditional that makes message
    queues and guarded waits expressible."""

    reg: str
    label: str
    target: int = -1


@dataclass
class Call(Instr):
    """Call a program function (pushes a frame — deepens the call stack)."""

    function: str
    target: int = -1


@dataclass
class Ret(Instr):
    pass


@dataclass
class Halt(Instr):
    pass


@dataclass
class Nop(Instr):
    pass


def effective_object(instr, registers: dict[str, int]) -> str:
    """Resolve the (possibly register-indexed) object name of a monitor op."""
    reg = instr.reg
    if reg is None:
        return instr.obj
    try:
        index = registers[reg]
    except KeyError:
        raise KeyError(
            f"register {reg!r} unset at {instr.loc} (indexed monitor operand)"
        ) from None
    return f"{instr.obj}{index}"
