"""A deterministic, virtual-time Dalvik VM substrate.

The simulated counterpart of the VM the paper modifies: objects with
thin/fat lock words, monitors embedding RAG nodes, threads with stack
buffers, a DEX-flavoured instruction set with monitor and wait/notify
operations, a single-core scheduler, and a Zygote fork model that gives
every process its own Dimmunix instance.
"""

from repro.dalvik import instructions, lockword
from repro.dalvik.instructions import SourceLoc
from repro.dalvik.monitor import Monitor
from repro.dalvik.objects import ObjectHeap, VMObject
from repro.dalvik.program import Program, ProgramBuilder
from repro.dalvik.scheduler import RunQueue, TimerQueue, diagnose_stall
from repro.dalvik.thread import ThreadState, VMThread
from repro.dalvik.vm import DalvikVM, VMConfig, VMRunResult
from repro.dalvik.zygote import Zygote

__all__ = [
    "DalvikVM",
    "VMConfig",
    "VMRunResult",
    "VMThread",
    "ThreadState",
    "VMObject",
    "ObjectHeap",
    "Monitor",
    "Program",
    "ProgramBuilder",
    "SourceLoc",
    "Zygote",
    "RunQueue",
    "TimerQueue",
    "diagnose_stall",
    "instructions",
    "lockword",
]
