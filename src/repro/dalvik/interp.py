"""The instruction interpreter.

One :meth:`Interpreter.step` executes one instruction (or resumes one
blocked monitor operation) for one thread. Monitor semantics live in
:class:`~repro.dalvik.sync.MonitorOps`; everything else — compute, sleep,
registers, control flow — is here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.dalvik import instructions as ins
from repro.dalvik.thread import ThreadState, VMThread
from repro.errors import ProgramError

if TYPE_CHECKING:
    from repro.dalvik.vm import DalvikVM

MAX_CALL_DEPTH = 256


class Interpreter:
    """Executes instructions against a :class:`~repro.dalvik.vm.DalvikVM`."""

    def __init__(self, vm: "DalvikVM") -> None:
        self._vm = vm

    def step(self, thread: VMThread) -> None:
        """Run one step; leaves the thread runnable, parked, or done."""
        vm = self._vm

        if thread.continuation is not None:
            # The only resumable continuation a RUNNABLE thread can carry
            # is a post-wait reacquisition (monitor grants complete
            # continuations at grant time, inside MonitorOps).
            vm.ops.resume_reacquire(thread)
            return

        if thread.pc >= len(thread.program.instructions):
            thread.state = ThreadState.TERMINATED
            return

        instr = thread.program.instructions[thread.pc]

        if isinstance(instr, ins.MonitorEnter):
            vm.ops.monitor_enter(thread, instr)
        elif isinstance(instr, ins.MonitorExit):
            vm.ops.monitor_exit(thread, instr)
        elif isinstance(instr, ins.Wait):
            vm.ops.monitor_wait(thread, instr)
        elif isinstance(instr, ins.Notify):
            vm.ops.monitor_notify(thread, instr)
        elif isinstance(instr, ins.NativeLock):
            vm.pthreads.native_mutex_lock(thread, instr)
        elif isinstance(instr, ins.NativeUnlock):
            vm.pthreads.native_mutex_unlock(thread, instr)
        elif isinstance(instr, ins.Compute):
            vm.charge(thread, vm.config.instruction_cost + instr.ticks)
            thread.compute_ticks += instr.ticks
            thread.pc += 1
            # A busy-wait long enough to model computation also ends the
            # quantum: on a single core, that is what makes the racy
            # interleavings (both threads holding their first lock)
            # reachable, as they are on real hardware.
            vm.request_preempt()
        elif isinstance(instr, ins.Sleep):
            vm.charge(thread, vm.config.instruction_cost)
            thread.pc += 1
            thread.state = ThreadState.SLEEPING
            vm.timers.arm(vm.clock + instr.ticks, "sleep", thread)
        elif isinstance(instr, ins.SetReg):
            vm.charge(thread, vm.config.instruction_cost)
            thread.registers[instr.reg] = instr.value
            thread.pc += 1
        elif isinstance(instr, ins.AddReg):
            vm.charge(thread, vm.config.instruction_cost)
            thread.registers[instr.reg] = (
                thread.registers.get(instr.reg, 0) + instr.delta
            )
            thread.pc += 1
        elif isinstance(instr, ins.Rand):
            vm.charge(thread, vm.config.instruction_cost)
            thread.registers[instr.reg] = vm.rng.randrange(instr.bound)
            thread.pc += 1
        elif isinstance(instr, ins.Jump):
            vm.charge(thread, vm.config.instruction_cost)
            thread.pc = instr.target
        elif isinstance(instr, ins.LoopDec):
            vm.charge(thread, vm.config.instruction_cost)
            value = thread.registers.get(instr.reg, 0) - 1
            thread.registers[instr.reg] = value
            thread.pc = instr.target if value > 0 else thread.pc + 1
        elif isinstance(instr, ins.BranchZero):
            vm.charge(thread, vm.config.instruction_cost)
            if thread.registers.get(instr.reg, 0) == 0:
                thread.pc = instr.target
            else:
                thread.pc += 1
        elif isinstance(instr, ins.Call):
            vm.charge(thread, vm.config.instruction_cost)
            if len(thread.frames) >= MAX_CALL_DEPTH:
                vm.fault_thread(
                    thread,
                    ProgramError(
                        f"call depth exceeded {MAX_CALL_DEPTH} in {thread.name}"
                    ),
                )
                return
            thread.frames.append((instr.function, thread.pc + 1))
            thread.pc = instr.target
        elif isinstance(instr, ins.Ret):
            vm.charge(thread, vm.config.instruction_cost)
            if not thread.frames:
                thread.state = ThreadState.TERMINATED
                return
            _function, return_pc = thread.frames.pop()
            thread.pc = return_pc
        elif isinstance(instr, ins.Halt):
            thread.state = ThreadState.TERMINATED
        elif isinstance(instr, ins.Nop):
            vm.charge(thread, vm.config.instruction_cost)
            thread.pc += 1
        else:
            vm.fault_thread(
                thread, ProgramError(f"unknown instruction {instr!r}")
            )
