"""The simulated Dalvik VM.

One :class:`DalvikVM` is one Android *process*: a heap with monitors, a
set of VM threads, a single-core deterministic scheduler, and — when
Dimmunix is enabled — a per-process :class:`~repro.core.engine.DimmunixCore`
initialized exactly the way ``initDimmunix`` is called on Zygote fork.

Virtual time makes the paper's measurements reproducible: throughput is
``syncs / virtual seconds``, overhead is extra ticks charged by the
Dimmunix cost model (stack retrieval, request bookkeeping, matching
steps), and a deadlock under the faithful ``BLOCK`` policy manifests as a
frozen VM whose diagnosis names the cycle — the simulated phone hang.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.config import DetectionPolicy, DimmunixConfig
from repro.core.engine import DimmunixCore
from repro.core.events import EventBus
from repro.core.history import History
from repro.core.signature import DeadlockSignature
from repro.dalvik.interp import Interpreter
from repro.dalvik.objects import ObjectHeap
from repro.dalvik.program import Program
from repro.dalvik.scheduler import RunQueue, TimerQueue, diagnose_stall
from repro.config import InterceptionMode
from repro.dalvik.sync import MonitorOps
from repro.dalvik.thread import ThreadState, VMThread


@dataclass(frozen=True)
class VMConfig:
    """Cost model and scheduling parameters for one VM.

    Tick costs follow the paper's observed profile: the dominant Dimmunix
    term is call-stack retrieval (``stack_retrieval_cost``), with request
    bookkeeping and signature matching charged per unit of actual
    algorithmic work performed.
    """

    dimmunix: DimmunixConfig = field(
        default_factory=lambda: DimmunixConfig(
            detection_policy=DetectionPolicy.BLOCK, yield_timeout=None
        )
    )
    seed: int = 0
    quantum: int = 8
    ticks_per_second: int = 10_000
    instruction_cost: int = 1
    monitor_cost: int = 2
    notify_cost: int = 1
    stack_retrieval_cost: int = 2
    request_base_cost: int = 1
    match_step_cost: int = 1
    release_base_cost: int = 1
    # One instantiation check is a dict probe plus a queue-size test —
    # far cheaper than a tick (a tick is microseconds of phone CPU), so
    # checks are charged fractionally: one tick per this many checks.
    # This is what makes Request cost grow with history size (A3) without
    # distorting the §5 operating point.
    checks_per_tick: int = 64
    max_ticks: int = 10_000_000
    # Virtual-time analog of the runtime adapter's yield timeout: a thread
    # parked by avoidance longer than this is treated as starving (the
    # structural detector cannot see wait-for edges through condition
    # variables, e.g. "the only thread that can notify me is parked").
    yield_timeout_ticks: Optional[int] = 20_000
    # Whether pthread mutex operations are intercepted (§4's NDK note):
    # OFF is the shipped Android Dimmunix; NATIVE_ONLY is the paper's
    # proposal; ALWAYS is the naive hook the paper warns against.
    native_interception: InterceptionMode = InterceptionMode.OFF

    def evolve(self, **changes) -> "VMConfig":
        """A copy with the given fields replaced (configs are immutable)."""
        from dataclasses import replace

        return replace(self, **changes)

    def vanilla(self) -> "VMConfig":
        """The same VM with Dimmunix off (the paper's baseline image)."""
        return self.evolve(dimmunix=DimmunixConfig.disabled())


@dataclass
class VMRunResult:
    """Outcome of a :meth:`DalvikVM.run` call."""

    status: str  # "completed" | "frozen" | "tick-limit"
    ticks: int
    syncs: int
    detections: tuple[DeadlockSignature, ...]
    faults: tuple[tuple[str, BaseException], ...]
    stall: Optional[dict] = None

    @property
    def frozen(self) -> bool:
        return self.status == "frozen"

    def syncs_per_second(self, ticks_per_second: int) -> float:
        if self.ticks == 0:
            return 0.0
        return self.syncs * ticks_per_second / self.ticks


class DalvikVM:
    """One simulated Android process with optional deadlock immunity."""

    def __init__(
        self,
        config: Optional[VMConfig] = None,
        history: Optional[History] = None,
        name: str = "vm",
        events: Optional[EventBus] = None,
    ) -> None:
        self.config = config or VMConfig()
        self.name = name
        self.clock = 0
        # initDimmunix: per-process core, history loaded from disk if the
        # Dimmunix config names a path. Events are stamped with the VM's
        # virtual clock (ticks) and tagged with the process name.
        self.core: Optional[DimmunixCore] = (
            DimmunixCore(
                self.config.dimmunix,
                history,
                events=events,
                source=name,
                clock=lambda: float(self.clock),
                # Deferred write-behind: virtual-time runs stay
                # deterministic (no worker thread interleaving events);
                # run() flushes when it returns.
                persistence_mode="deferred",
            )
            if self.config.dimmunix.enabled
            else None
        )
        self.heap = ObjectHeap(self.core)
        self.threads: list[VMThread] = []
        self.globals: dict[str, int] = {}
        self.rng = random.Random(self.config.seed)
        self.timers = TimerQueue()
        self.ops = MonitorOps(self)
        # Imported lazily: repro.ndk depends on repro.dalvik for thread
        # and instruction types, so the VM cannot import it at module
        # scope without a cycle.
        from repro.ndk.pthread_layer import PthreadLib

        self.pthreads = PthreadLib(self, self.config.native_interception)
        self.interp = Interpreter(self)
        self._run_queue = RunQueue()
        self._sig_waiters: dict[DeadlockSignature, list[VMThread]] = {}
        self._node_to_thread: dict[int, VMThread] = {}
        self._threads_by_local_id: dict[int, VMThread] = {}
        self.detections: list[DeadlockSignature] = []
        self.faults: list[tuple[str, BaseException]] = []
        self.total_syncs = 0
        self.sync_hook: Optional[Callable[[int, VMThread], None]] = None
        self._preempt_requested = False

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def spawn(
        self,
        program: Program,
        name: str = "",
        registers: Optional[dict[str, int]] = None,
    ) -> VMThread:
        """Create a thread (allocThread + initNode in the paper)."""
        node = self.core.register_thread(name) if self.core is not None else None
        thread = VMThread(program, name, node, globals_table=self.globals)
        if registers:
            thread.registers.update(registers)
        self.threads.append(thread)
        thread.local_id = len(self.threads)  # thin-lock owner id
        self._threads_by_local_id[thread.local_id] = thread
        if node is not None:
            self._node_to_thread[node.node_id] = thread
        self._run_queue.push(thread)
        return thread

    def thread_by_local_id(self, local_id: int) -> Optional[VMThread]:
        return self._threads_by_local_id.get(local_id)

    def new_object(self, name: str, class_name: str = "java.lang.Object"):
        return self.heap.ensure(name, class_name)

    # ------------------------------------------------------------------
    # services used by MonitorOps / Interpreter
    # ------------------------------------------------------------------

    def charge(self, thread: VMThread, ticks: int) -> None:
        self.clock += ticks
        thread.cpu_ticks += ticks

    def request_preempt(self) -> None:
        """End the current thread's quantum after this instruction."""
        self._preempt_requested = True

    def enqueue(self, thread: VMThread) -> None:
        if thread.state == ThreadState.RUNNABLE:
            self._run_queue.push(thread)

    def note_sync(self, thread: VMThread) -> None:
        self.total_syncs += 1
        if self.sync_hook is not None:
            self.sync_hook(self.clock, thread)

    def record_detection(self, signature: DeadlockSignature) -> None:
        self.detections.append(signature)

    def fault_thread(self, thread: VMThread, error: BaseException) -> None:
        """Kill a thread with an error, unwinding its monitors.

        Java exceptions release monitors as they unwind synchronized
        blocks; a faulted VM thread must do the same or its peers block
        forever on locks the corpse still owns.
        """
        thread.fault = error
        thread.state = ThreadState.FAULTED
        self.faults.append((thread.name, error))
        self.pthreads.release_all_for(thread)
        for monitor in self.heap.monitors():
            if monitor.owner is thread:
                if self.core is not None and monitor.node is not None:
                    result = self.core.release(thread.node, monitor.node)
                    for signature in result.notify:
                        self.wake_signature(signature)
                monitor.owner = None
                monitor.recursion = 0
                self.ops.grant_next(monitor)
        if self.core is None:
            # Vanilla: release any thin locks the dead thread held.
            from repro.dalvik import lockword

            for _name, obj in self.heap.objects():
                word = obj.lock_word
                if (
                    not lockword.is_fat(word)
                    and lockword.thin_owner(word) == thread.local_id
                ):
                    obj.lock_word = lockword.UNLOCKED_WORD

    def park_on_signature(
        self, thread: VMThread, signature: DeadlockSignature
    ) -> None:
        self._sig_waiters.setdefault(signature, []).append(thread)

    def wake_signature(self, signature: DeadlockSignature) -> None:
        """Release-side notifyAll on a signature's parked threads (§4)."""
        waiters = self._sig_waiters.pop(signature, None)
        if not waiters:
            return
        for thread in waiters:
            if thread.state == ThreadState.YIELDING:
                thread.state = ThreadState.RUNNABLE
                thread.yielding_on = None
                self._run_queue.push(thread)

    def wake_resumed(self, resumed) -> None:
        """Wake threads the engine granted starvation bypasses to."""
        for node in resumed:
            thread = self._node_to_thread.get(node.node_id)
            if thread is None or thread.state != ThreadState.YIELDING:
                continue
            signature = node.yielding_on
            if signature is not None and signature in self._sig_waiters:
                try:
                    self._sig_waiters[signature].remove(thread)
                except ValueError:
                    pass
            thread.state = ThreadState.RUNNABLE
            thread.yielding_on = None
            self._run_queue.push(thread)

    # ------------------------------------------------------------------
    # the scheduler loop
    # ------------------------------------------------------------------

    def run(self, max_ticks: Optional[int] = None) -> VMRunResult:
        """Run until completion, freeze, or the tick limit; resumable."""
        limit = self.clock + (max_ticks if max_ticks is not None else self.config.max_ticks)
        quantum = self.config.quantum
        while self.clock < limit:
            self._fire_due_timers()
            thread = self._run_queue.pop()
            if thread is None:
                if not self._fire_timers_or_advance():
                    break
                continue
            for _ in range(quantum):
                self.interp.step(thread)
                if (
                    thread.state != ThreadState.RUNNABLE
                    or self.clock >= limit
                    or self._preempt_requested
                ):
                    self._preempt_requested = False
                    break
            self.enqueue(thread)
        # The durability point of the simulated phone: whether the run
        # completed, hit the tick limit, or froze on a deadlock, pending
        # antibodies reach the backing store before anyone inspects the
        # "rebooted" process. (The paper saves during the freeze; we save
        # at the deterministic moment the freeze is observed.)
        if self.core is not None:
            self.core.flush_history()
        return self._result(limit)

    def _fire_due_timers(self) -> None:
        """Wake every timer whose deadline the clock has passed."""
        deadline = self.timers.next_deadline()
        if deadline is None or deadline > self.clock:
            return
        for kind, thread in self.timers.pop_due(self.clock):
            if kind == "sleep":
                if thread.state == ThreadState.SLEEPING:
                    thread.state = ThreadState.RUNNABLE
                    self._run_queue.push(thread)
            elif kind == "wait-timeout":
                self.ops.wait_timed_out(thread)
            elif kind == "yield-timeout":
                self._yield_timed_out(thread)

    def _yield_timed_out(self, thread: VMThread) -> None:
        """The safety net fired: a parked thread is starving."""
        if thread.state != ThreadState.YIELDING or self.core is None:
            return  # stale timer
        self.core.force_bypass(thread.node)
        signature = thread.yielding_on
        if signature is not None and signature in self._sig_waiters:
            try:
                self._sig_waiters[signature].remove(thread)
            except ValueError:
                pass
        thread.yielding_on = None
        thread.state = ThreadState.RUNNABLE
        self._run_queue.push(thread)

    def _fire_timers_or_advance(self) -> bool:
        """With no runnable thread, jump to the next timer. False = stall."""
        deadline = self.timers.next_deadline()
        if deadline is None:
            return False
        self.clock = max(self.clock, deadline)
        self._fire_due_timers()
        return True

    def _result(self, limit: int) -> VMRunResult:
        live = [t for t in self.threads if t.is_live()]
        if not live:
            status = "completed"
            stall = None
        elif self.clock >= limit:
            status = "tick-limit"
            stall = None
        elif any(t.state == ThreadState.RUNNABLE for t in live) or len(
            self.timers
        ):
            # run() returned mid-flight (resumable); report tick-limit.
            status = "tick-limit"
            stall = None
        else:
            status = "frozen"
            stall = diagnose_stall(live)
        return VMRunResult(
            status=status,
            ticks=self.clock,
            syncs=self.total_syncs,
            detections=tuple(self.detections),
            faults=tuple(self.faults),
            stall=stall,
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    @property
    def events(self) -> Optional[EventBus]:
        """The typed event stream of this VM's core (None when vanilla)."""
        return self.core.events if self.core is not None else None

    def virtual_seconds(self) -> float:
        return self.clock / self.config.ticks_per_second

    def syncs_per_second(self) -> float:
        seconds = self.virtual_seconds()
        return self.total_syncs / seconds if seconds > 0 else 0.0

    def live_threads(self) -> list[VMThread]:
        return [t for t in self.threads if t.is_live()]

    def save_history(self, path=None) -> None:
        """Persist the history through the store (legacy: to ``path``).

        Explicit user intent: writes regardless of ``auto_save``.
        """
        if self.core is None:
            raise ValueError("cannot save history: Dimmunix is disabled")
        self.core.history.persist(path)

    def flush_history(self) -> int:
        """Flush pending antibodies to the backing store now."""
        if self.core is None:
            return 0
        return self.core.flush_history()

    def __repr__(self) -> str:
        return (
            f"<DalvikVM {self.name} clock={self.clock} threads="
            f"{len(self.threads)} syncs={self.total_syncs}>"
        )
