"""The Zygote process model.

On Android every application process is forked from Zygote; the paper
hooks ``Dalvik_dalvik_system_Zygote_fork`` / ``forkAndSpecializeCommon``
so that ``initDimmunix`` runs as soon as the child starts — giving each
process its own Dimmunix instance, history, and position map (Figure 1).

:class:`Zygote` reproduces that: :meth:`fork` creates a fresh
:class:`~repro.dalvik.vm.DalvikVM` whose per-process Dimmunix core loads
(and persists to) a per-process history file under the platform's history
directory. Killing and re-forking a process — the reboot in the paper's
case study — therefore keeps its antibodies.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.core.store.url import (
    KNOWN_SCHEMES,
    SCHEME_JSONL,
    SCHEME_TCP,
    HistoryUrl,
    format_history_url,
)
from repro.dalvik.vm import DalvikVM, VMConfig

# Per-scheme file suffixes for the per-process history layout. Schemes
# without an entry get a generic ``.<scheme>.history`` name, so a newly
# registered backend works through Zygote without touching this module.
_SCHEME_SUFFIXES = {
    "jsonl": ".history",
    "sqlite": ".history.db",
}


class Zygote:
    """Forks simulated app processes with per-process Dimmunix instances.

    ``backend`` selects the history store each forked process persists
    to, resolved through the store URL registry
    (:mod:`repro.core.store.url`) — any scheme the registry knows works
    here: ``"jsonl"`` (the default — one legacy-compatible flat file per
    process, the paper's layout), ``"sqlite"`` (one indexed WAL database
    per process), ``"mem"`` (in-process only — forks start clean, the
    reboot-loses-antibodies baseline), or ``"shard"`` (an N-way sharded
    pool directory per process). ``"tcp"`` is the one registry scheme
    rejected here: a fleet pool is shared, not per-process — point every
    fork at it by setting ``history_url`` on the template config
    instead, which is also the platform-wide-pool spelling for the
    file-backed schemes.
    """

    def __init__(
        self,
        vm_config: Optional[VMConfig] = None,
        history_dir: Optional[Path | str] = None,
        backend: str = SCHEME_JSONL,
    ) -> None:
        if backend not in KNOWN_SCHEMES:
            raise ValueError(
                f"unknown history backend {backend!r} "
                f"(known: {', '.join(KNOWN_SCHEMES)})"
            )
        if backend == SCHEME_TCP:
            # Fleet-addressed, not file-mapped: there is no per-process
            # file layout to derive a tcp:// DSN from.
            raise ValueError(
                "tcp:// has no per-process file layout — share the fleet "
                "pool by setting history_url='tcp://host:port' on the "
                "template DimmunixConfig instead"
            )
        self.vm_config = vm_config or VMConfig()
        self.backend = backend
        self.history_dir = Path(history_dir) if history_dir is not None else None
        if self.history_dir is not None:
            self.history_dir.mkdir(parents=True, exist_ok=True)
        self._fork_count = 0

    @property
    def _persistent(self) -> bool:
        """Whether the selected backend writes files at all."""
        return HistoryUrl(self.backend).persistent

    def history_path(self, process_name: str) -> Optional[Path]:
        if self.history_dir is None or not self._persistent:
            return None
        safe = process_name.replace("/", "_")
        suffix = _SCHEME_SUFFIXES.get(
            self.backend, f".{self.backend}.history"
        )
        return self.history_dir / f"{safe}{suffix}"

    def history_url(self, process_name: str) -> Optional[str]:
        """The DSN a fork of ``process_name`` loads and persists to."""
        if not self._persistent:
            return format_history_url(self.backend, None)
        path = self.history_path(process_name)
        if path is None:
            return None
        return format_history_url(self.backend, path)

    def fork(self, process_name: str, seed: Optional[int] = None) -> DalvikVM:
        """forkAndSpecializeCommon + initDimmunix for one app process."""
        self._fork_count += 1
        dimmunix = self.vm_config.dimmunix
        if dimmunix.enabled:
            if self.backend == SCHEME_JSONL:
                # Legacy spelling, kept so configs read as before. The
                # template's history_url is cleared for the same reason
                # the else-branch clears history_path: a preset from
                # the template config must not override the selected
                # backend (and setting both is a config error).
                dimmunix = dimmunix.evolve(
                    history_path=self.history_path(process_name),
                    history_url=None,
                )
            else:
                # Always evolve: a persistent backend without a
                # history_dir means in-memory (url None), never a
                # silent fall-through to a pre-set history_path.
                dimmunix = dimmunix.evolve(
                    history_path=None,
                    history_url=self.history_url(process_name),
                )
        config = self.vm_config.evolve(
            dimmunix=dimmunix,
            seed=seed if seed is not None else self.vm_config.seed,
        )
        return DalvikVM(config, name=process_name)

    @property
    def fork_count(self) -> int:
        return self._fork_count
