"""Dalvik-style lock words: thin vs. fat.

Every object header in Dalvik carries a 32-bit lock word. A *thin* lock
packs the owner thread id and a recursion count into the word itself —
cheap, but with no room for anything else. A *fat* lock stores a pointer
to a ``Monitor`` struct (with the low bit set, ``LW_SHAPE_FAT``).

Android Dimmunix needs every contended-or-tracked lock to be fat, because
the RAG node lives inside the ``Monitor`` struct; §4 shows the
double-checked fattening inserted before ``lockMonitor``. This module
reproduces the bit-level encoding so the substrate exercises the same
transition, and the tests can assert on word shapes.

Layout used here (mirroring Dalvik's):

* bit 0 — shape: 0 = thin, 1 = fat;
* thin: bits 1..16 owner thread id (0 = unlocked), bits 17..31 recursion
  count;
* fat: bits 1..31 monitor id (index into the process monitor table).
"""

from __future__ import annotations

LW_SHAPE_THIN = 0
LW_SHAPE_FAT = 1

_SHAPE_MASK = 0x1
_THIN_OWNER_SHIFT = 1
_THIN_OWNER_BITS = 16
_THIN_OWNER_MASK = ((1 << _THIN_OWNER_BITS) - 1) << _THIN_OWNER_SHIFT
_THIN_COUNT_SHIFT = _THIN_OWNER_SHIFT + _THIN_OWNER_BITS
_THIN_COUNT_BITS = 31 - _THIN_COUNT_SHIFT + 1
_MAX_THIN_COUNT = (1 << _THIN_COUNT_BITS) - 1
_FAT_ID_SHIFT = 1

MAX_THIN_OWNER = (1 << _THIN_OWNER_BITS) - 1
MAX_THIN_COUNT = _MAX_THIN_COUNT

UNLOCKED_WORD = 0


def lw_shape(word: int) -> int:
    """The shape bit of a lock word."""
    return word & _SHAPE_MASK


def is_fat(word: int) -> bool:
    return lw_shape(word) == LW_SHAPE_FAT


def make_thin(owner_id: int, count: int = 0) -> int:
    """Encode a thin lock word; ``owner_id`` 0 means unlocked."""
    if not 0 <= owner_id <= MAX_THIN_OWNER:
        raise ValueError(f"thin owner id {owner_id} out of range")
    if not 0 <= count <= _MAX_THIN_COUNT:
        raise ValueError(f"thin recursion count {count} out of range")
    return (
        LW_SHAPE_THIN
        | (owner_id << _THIN_OWNER_SHIFT)
        | (count << _THIN_COUNT_SHIFT)
    )


def thin_owner(word: int) -> int:
    if is_fat(word):
        raise ValueError("not a thin lock word")
    return (word & _THIN_OWNER_MASK) >> _THIN_OWNER_SHIFT


def thin_count(word: int) -> int:
    if is_fat(word):
        raise ValueError("not a thin lock word")
    return word >> _THIN_COUNT_SHIFT


def make_fat(monitor_id: int) -> int:
    """Encode a fat lock word referencing ``monitor_id``."""
    if monitor_id < 0:
        raise ValueError(f"monitor id {monitor_id} must be non-negative")
    return LW_SHAPE_FAT | (monitor_id << _FAT_ID_SHIFT)


def fat_monitor_id(word: int) -> int:
    """The paper's ``LW_MONITOR``: the monitor referenced by a fat word."""
    if not is_fat(word):
        raise ValueError("not a fat lock word")
    return word >> _FAT_ID_SHIFT
