"""The fat monitor struct.

Mirrors Dalvik's ``struct Monitor`` after the paper's change: alongside
the owner and recursion count it embeds the Dimmunix RAG node (``Node
node;`` in §4), plus the two queues every monitor needs — threads blocked
trying to enter, and the wait set of ``Object.wait()`` callers.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.core.node import LockNode
    from repro.dalvik.thread import VMThread
    from repro.dalvik.objects import VMObject


class Monitor:
    """One inflated lock, with its embedded RAG node."""

    __slots__ = (
        "monitor_id",
        "obj",
        "node",
        "owner",
        "recursion",
        "entry_queue",
        "wait_set",
    )

    def __init__(
        self,
        monitor_id: int,
        obj: "VMObject",
        node: Optional["LockNode"],
    ) -> None:
        self.monitor_id = monitor_id
        self.obj = obj
        self.node = node
        self.owner: Optional["VMThread"] = None
        self.recursion = 0
        # FIFO of threads blocked on monitorenter (grant order is
        # deterministic, which the whole simulation relies on).
        self.entry_queue: deque["VMThread"] = deque()
        # Threads parked in Object.wait() on this monitor.
        self.wait_set: deque["VMThread"] = deque()

    def is_owned_by(self, thread: "VMThread") -> bool:
        return self.owner is thread

    def is_free(self) -> bool:
        return self.owner is None

    def __repr__(self) -> str:
        owner = self.owner.name if self.owner is not None else None
        return (
            f"<Monitor #{self.monitor_id} of {self.obj.class_name}"
            f"#{self.obj.object_id} owner={owner} rec={self.recursion} "
            f"blocked={len(self.entry_queue)} waiting={len(self.wait_set)}>"
        )
