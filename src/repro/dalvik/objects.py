"""The simulated VM object model.

:class:`VMObject` is a Java object as the VM sees it: a class name, a
field table, and — crucially for us — a lock word in the header.
:class:`ObjectHeap` is the per-process heap: it allocates objects, owns
the monitor table that fat lock words index into, and implements the
eager lock fattening of §4 (a monitor is created and the word flipped to
``LW_SHAPE_FAT`` the first time ``monitorenter`` touches the object).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

from repro.dalvik import lockword
from repro.dalvik.monitor import Monitor

if TYPE_CHECKING:
    from repro.core.engine import DimmunixCore


class VMObject:
    """One heap object with a Dalvik-style header."""

    __slots__ = ("object_id", "class_name", "lock_word", "fields")

    _ids = itertools.count(1)

    def __init__(self, class_name: str = "java.lang.Object") -> None:
        self.object_id: int = next(VMObject._ids)
        self.class_name = class_name
        self.lock_word: int = lockword.UNLOCKED_WORD
        self.fields: dict[str, object] = {}

    def __repr__(self) -> str:
        shape = "fat" if lockword.is_fat(self.lock_word) else "thin"
        return f"<VMObject {self.class_name}#{self.object_id} lock={shape}>"


class ObjectHeap:
    """Per-process heap plus the monitor table.

    Also keeps byte-level accounting used by the memory-overhead
    experiment (E2): every allocation and every monitor inflation adds to
    ``allocated_bytes``, and Dimmunix's own structures are counted
    separately by the engine, so "Dimmunix vs. vanilla" memory is an
    honest subtraction.
    """

    OBJECT_HEADER_BYTES = 16
    FIELD_BYTES = 8
    MONITOR_BYTES = 64

    def __init__(self, core: Optional["DimmunixCore"] = None) -> None:
        self._core = core
        self._objects: dict[str, VMObject] = {}
        self._monitors: list[Monitor] = []
        self.allocated_bytes = 0
        self.monitors_created = 0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def new_object(
        self, name: str, class_name: str = "java.lang.Object"
    ) -> VMObject:
        """Allocate a named object (names are the programs' references)."""
        if name in self._objects:
            raise ValueError(f"object name {name!r} already allocated")
        obj = VMObject(class_name)
        self._objects[name] = obj
        self.allocated_bytes += self.OBJECT_HEADER_BYTES
        return obj

    def get(self, name: str) -> VMObject:
        try:
            return self._objects[name]
        except KeyError:
            raise KeyError(f"no object named {name!r} on this heap") from None

    def ensure(self, name: str, class_name: str = "java.lang.Object") -> VMObject:
        obj = self._objects.get(name)
        if obj is None:
            obj = self.new_object(name, class_name)
        return obj

    def object_count(self) -> int:
        return len(self._objects)

    def objects(self):
        return self._objects.items()

    # ------------------------------------------------------------------
    # monitors / lock fattening
    # ------------------------------------------------------------------

    def monitor_of(self, obj: VMObject) -> Optional[Monitor]:
        """The paper's ``LW_MONITOR(obj->lock)``: ``None`` while thin."""
        if not lockword.is_fat(obj.lock_word):
            return None
        return self._monitors[lockword.fat_monitor_id(obj.lock_word)]

    def fatten(self, obj: VMObject, name: str = "") -> Monitor:
        """Inflate the object's thin lock into a fat monitor (§4).

        Idempotent: an already-fat object returns its existing monitor.
        The monitor embeds a fresh RAG lock node when a Dimmunix core is
        attached — ``initNode(&mon->node, obj, T_MONITOR)``.
        """
        existing = self.monitor_of(obj)
        if existing is not None:
            return existing
        monitor_id = len(self._monitors)
        node = (
            self._core.register_lock(name or f"monitor#{monitor_id}")
            if self._core is not None
            else None
        )
        monitor = Monitor(monitor_id, obj, node)
        self._monitors.append(monitor)
        obj.lock_word = lockword.make_fat(monitor_id)
        self.allocated_bytes += self.MONITOR_BYTES
        self.monitors_created += 1
        return monitor

    def monitor_count(self) -> int:
        return len(self._monitors)

    def monitors(self) -> list[Monitor]:
        return list(self._monitors)
