"""Scheduling primitives for the substrate VM.

The simulated phone has one core (the Nexus One the paper used was
single-core), so scheduling is: one global virtual clock, a round-robin
run queue with a fixed instruction quantum, and a timer heap for sleeps
and timed waits. Everything is deterministic — same programs, same seed,
same interleaving — which is what makes deadlock reproductions replayable
in tests.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import TYPE_CHECKING, Iterable, Optional

from repro.dalvik.thread import ThreadState, VMThread

if TYPE_CHECKING:
    from repro.dalvik.monitor import Monitor


class RunQueue:
    """FIFO of runnable threads with duplicate-suppression.

    A thread can be woken from several places (monitor grant, signature
    notification, timer); the ``queued`` mark keeps it enqueued at most
    once, and :meth:`pop` skips entries whose thread stopped being
    runnable after it was queued.
    """

    def __init__(self) -> None:
        self._queue: deque[VMThread] = deque()
        self._queued: set[int] = set()

    def push(self, thread: VMThread) -> None:
        if thread.thread_id in self._queued:
            return
        self._queued.add(thread.thread_id)
        self._queue.append(thread)

    def pop(self) -> Optional[VMThread]:
        while self._queue:
            thread = self._queue.popleft()
            self._queued.discard(thread.thread_id)
            if thread.state == ThreadState.RUNNABLE:
                return thread
        return None

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return any(
            t.state == ThreadState.RUNNABLE for t in self._queue
        )


TIMER_SLEEP = "sleep"
TIMER_WAIT_TIMEOUT = "wait-timeout"


class TimerQueue:
    """Virtual-time timers (min-heap keyed by deadline).

    Cancellation is lazy: a fired timer checks whether its thread is still
    in the state the timer was armed for and otherwise does nothing —
    the standard trick for wait/notify racing with timeouts.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, str, VMThread]] = []
        self._seq = itertools.count()

    def arm(self, deadline: int, kind: str, thread: VMThread) -> None:
        heapq.heappush(self._heap, (deadline, next(self._seq), kind, thread))

    def next_deadline(self) -> Optional[int]:
        return self._heap[0][0] if self._heap else None

    def pop_due(self, now: int) -> list[tuple[str, VMThread]]:
        due = []
        while self._heap and self._heap[0][0] <= now:
            _deadline, _seq, kind, thread = heapq.heappop(self._heap)
            due.append((kind, thread))
        return due

    def __len__(self) -> int:
        return len(self._heap)


def diagnose_stall(threads: Iterable[VMThread]) -> dict:
    """Explain a global stall without relying on Dimmunix state.

    Walks the VM's own wait-for structure (blocked thread → monitor →
    owner) so it works for vanilla runs too. Returns a dict with the
    per-state thread lists and, when one exists, the deadlock cycle as a
    list of thread names.
    """
    blocked: list[VMThread] = []
    waiting: list[VMThread] = []
    yielding: list[VMThread] = []
    for thread in threads:
        if thread.state == ThreadState.BLOCKED:
            blocked.append(thread)
        elif thread.state == ThreadState.WAITING:
            waiting.append(thread)
        elif thread.state == ThreadState.YIELDING:
            yielding.append(thread)

    def blocked_on(thread: VMThread) -> Optional["Monitor"]:
        if thread.continuation is None:
            return None
        return thread.continuation[1]

    cycle_names: list[str] = []
    for start in blocked:
        seen: list[VMThread] = []
        current: Optional[VMThread] = start
        while current is not None and current not in seen:
            seen.append(current)
            monitor = blocked_on(current)
            current = monitor.owner if monitor is not None else None
        if current is not None and current in seen:
            cycle = seen[seen.index(current):]
            cycle_names = [t.name for t in cycle]
            break

    return {
        "blocked": [t.name for t in blocked],
        "waiting": [t.name for t in waiting],
        "yielding": [t.name for t in yielding],
        "cycle": cycle_names,
    }
