"""Programs and the builder DSL for the substrate VM.

A :class:`Program` is a resolved instruction list plus label/function
tables. :class:`ProgramBuilder` is how workloads write them::

    b = ProgramBuilder("EmailSync.java")
    b.label("loop")
    b.monitor_enter("inbox", line=42)   # a stable sync site
    b.compute(8)
    b.monitor_exit("inbox", line=44)
    b.compute(20)
    b.loop_dec("i", "loop")
    b.halt()
    program = b.build()

Line numbers default to a per-file auto-increment, so distinct statements
get distinct positions; passing ``line=`` pins a statement to a chosen
position — that is how tests and benchmarks construct colliding or
disjoint signature sites on purpose.
"""

from __future__ import annotations

from typing import Optional

from repro.dalvik import instructions as ins
from repro.errors import ProgramError


class Program:
    """An immutable, label-resolved program."""

    def __init__(
        self,
        instructions: list[ins.Instr],
        labels: dict[str, int],
        functions: dict[str, int],
        source_file: str,
        entry: int = 0,
    ) -> None:
        self.instructions = tuple(instructions)
        self.labels = dict(labels)
        self.functions = dict(functions)
        self.source_file = source_file
        self.entry = entry
        if not self.instructions:
            raise ProgramError("a program needs at least one instruction")

    def __len__(self) -> int:
        return len(self.instructions)

    def sync_sites(self) -> list[ins.SourceLoc]:
        """Locations of all MONITOR_ENTER instructions (distinct, ordered)."""
        seen: dict[tuple[str, int], ins.SourceLoc] = {}
        for instr in self.instructions:
            if isinstance(instr, ins.MonitorEnter):
                seen.setdefault((instr.loc.file, instr.loc.line), instr.loc)
        return list(seen.values())


class ProgramBuilder:
    """Fluent builder producing :class:`Program` objects."""

    def __init__(self, source_file: str) -> None:
        self._file = source_file
        self._instructions: list[ins.Instr] = []
        self._labels: dict[str, int] = {}
        self._functions: dict[str, int] = {}
        self._function = "main"
        self._next_line = 1

    # -- placement helpers -------------------------------------------------

    def _place(self, instr: ins.Instr, line: Optional[int]) -> "ProgramBuilder":
        if line is None:
            line = self._next_line
        self._next_line = max(self._next_line, line) + 1
        instr.place(ins.SourceLoc(self._file, line, self._function))
        self._instructions.append(instr)
        return self

    @property
    def here(self) -> int:
        """Index of the next instruction (for assertions in tests)."""
        return len(self._instructions)

    # -- structure ---------------------------------------------------------

    def label(self, name: str) -> "ProgramBuilder":
        if name in self._labels:
            raise ProgramError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        return self

    def function(self, name: str) -> "ProgramBuilder":
        """Begin a function body; ``call(name)`` jumps here."""
        if name in self._functions:
            raise ProgramError(f"duplicate function {name!r}")
        self._functions[name] = len(self._instructions)
        self._function = name
        return self

    def source(self, file: str) -> "ProgramBuilder":
        """Switch the source file subsequent instructions are placed in.

        Cross-service code linked into one thread's program keeps its own
        file attribution this way (e.g. a NotificationManagerService
        method calling into StatusBarService.java), so Dimmunix positions
        match the real services' source structure.
        """
        self._file = file
        return self

    # -- instructions --------------------------------------------------------

    def monitor_enter(
        self, obj: str, reg: Optional[str] = None, line: Optional[int] = None
    ) -> "ProgramBuilder":
        return self._place(ins.MonitorEnter(obj, reg), line)

    def monitor_exit(
        self, obj: str, reg: Optional[str] = None, line: Optional[int] = None
    ) -> "ProgramBuilder":
        return self._place(ins.MonitorExit(obj, reg), line)

    def wait(
        self,
        obj: str,
        timeout: Optional[int] = None,
        reg: Optional[str] = None,
        line: Optional[int] = None,
    ) -> "ProgramBuilder":
        return self._place(ins.Wait(obj, timeout, reg), line)

    def notify(
        self, obj: str, reg: Optional[str] = None, line: Optional[int] = None
    ) -> "ProgramBuilder":
        return self._place(ins.Notify(obj, wake_all=False, reg=reg), line)

    def notify_all(
        self, obj: str, reg: Optional[str] = None, line: Optional[int] = None
    ) -> "ProgramBuilder":
        return self._place(ins.Notify(obj, wake_all=True, reg=reg), line)

    def native_lock(
        self, obj: str, reg: Optional[str] = None, line: Optional[int] = None
    ) -> "ProgramBuilder":
        """``pthread_mutex_lock`` from JNI code (see repro.ndk)."""
        return self._place(ins.NativeLock(obj, reg), line)

    def native_unlock(
        self, obj: str, reg: Optional[str] = None, line: Optional[int] = None
    ) -> "ProgramBuilder":
        """``pthread_mutex_unlock`` from JNI code (see repro.ndk)."""
        return self._place(ins.NativeUnlock(obj, reg), line)

    def compute(self, ticks: int, line: Optional[int] = None) -> "ProgramBuilder":
        return self._place(ins.Compute(ticks), line)

    def sleep(self, ticks: int, line: Optional[int] = None) -> "ProgramBuilder":
        return self._place(ins.Sleep(ticks), line)

    def set_reg(
        self, reg: str, value: int, line: Optional[int] = None
    ) -> "ProgramBuilder":
        return self._place(ins.SetReg(reg, value), line)

    def add_reg(
        self, reg: str, delta: int, line: Optional[int] = None
    ) -> "ProgramBuilder":
        return self._place(ins.AddReg(reg, delta), line)

    def rand(
        self, reg: str, bound: int, line: Optional[int] = None
    ) -> "ProgramBuilder":
        return self._place(ins.Rand(reg, bound), line)

    def jump(self, label: str, line: Optional[int] = None) -> "ProgramBuilder":
        return self._place(ins.Jump(label), line)

    def loop_dec(
        self, reg: str, label: str, line: Optional[int] = None
    ) -> "ProgramBuilder":
        return self._place(ins.LoopDec(reg, label), line)

    def branch_zero(
        self, reg: str, label: str, line: Optional[int] = None
    ) -> "ProgramBuilder":
        return self._place(ins.BranchZero(reg, label), line)

    def call(self, function: str, line: Optional[int] = None) -> "ProgramBuilder":
        return self._place(ins.Call(function), line)

    def ret(self, line: Optional[int] = None) -> "ProgramBuilder":
        return self._place(ins.Ret(), line)

    def halt(self, line: Optional[int] = None) -> "ProgramBuilder":
        return self._place(ins.Halt(), line)

    def nop(self, line: Optional[int] = None) -> "ProgramBuilder":
        return self._place(ins.Nop(), line)

    # -- finalize -------------------------------------------------------------

    def build(self, entry: int = 0) -> Program:
        """Resolve labels and function targets; validate references."""
        for index, instr in enumerate(self._instructions):
            if isinstance(instr, (ins.Jump, ins.LoopDec, ins.BranchZero)):
                target = self._labels.get(instr.label)
                if target is None:
                    raise ProgramError(
                        f"unresolved label {instr.label!r} at instruction {index}"
                    )
                instr.target = target
            elif isinstance(instr, ins.Call):
                target = self._functions.get(instr.function)
                if target is None:
                    raise ProgramError(
                        f"unresolved function {instr.function!r} at instruction {index}"
                    )
                instr.target = target
        return Program(
            self._instructions,
            self._labels,
            self._functions,
            self._file,
            entry=entry,
        )
