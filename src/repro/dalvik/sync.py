"""The VM's monitor routines, patched the way the paper patches Dalvik.

``lockMonitor`` / ``unlockMonitor`` / ``waitMonitor`` are implemented by
:class:`MonitorOps`. When the VM runs with Dimmunix, each routine calls
the core engine exactly where §4 says Dalvik was changed:

* before blocking on ``monitorenter`` — ``dvmGetCallStack`` + the
  ``Request`` retry loop (a yield parks the thread on the signature);
* right after acquisition — ``Acquired``;
* right before release — ``Release``, followed by notifying every
  signature containing the releasing position;
* and around the *re*-acquisition inside ``Object.wait()`` — the change
  that makes wait()-induced inversions visible (§3.2).

Tick charging implements the cost model: monitor operations have a base
cost; Dimmunix adds the stack-retrieval cost (the dominant term per §5)
plus work proportional to the matching steps actually performed, so
virtual-time overhead scales with the algorithm's real work.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.config import DetectionPolicy
from repro.core.engine import RequestVerdict
from repro.dalvik import instructions as ins
from repro.dalvik import lockword
from repro.dalvik.monitor import Monitor
from repro.dalvik.thread import ThreadState, VMThread
from repro.errors import DeadlockDetectedError, IllegalMonitorStateError

if TYPE_CHECKING:
    from repro.dalvik.vm import DalvikVM


class MonitorOps:
    """lockMonitor / unlockMonitor / waitMonitor for one VM."""

    def __init__(self, vm: "DalvikVM") -> None:
        self._vm = vm
        # Fractional-cost remainder for instantiation checks (see
        # VMConfig.checks_per_tick); checks cheaper than one tick
        # accumulate here until they amount to a whole tick.
        self._check_accum = 0

    # ------------------------------------------------------------------
    # lockMonitor
    # ------------------------------------------------------------------

    def monitor_enter(self, thread: VMThread, instr: ins.MonitorEnter) -> None:
        vm = self._vm
        obj_name = ins.effective_object(instr, thread.registers)
        obj = vm.heap.ensure(obj_name)
        monitor = vm.heap.monitor_of(obj)
        vm.charge(thread, vm.config.monitor_cost)

        if monitor is None:
            if vm.core is None:
                # Vanilla Dalvik: thin-lock fast path. The lock stays a
                # bit-packed word until contention inflates it — this is
                # the memory asymmetry E2 measures, since Dimmunix (below)
                # must fatten on first monitorenter to embed a RAG node.
                if self._thin_enter(thread, obj):
                    return
                monitor = vm.heap.monitor_of(obj)
                assert monitor is not None  # _thin_enter inflated it
            else:
                # Eager fattening (§4): only a fat lock carries a RAG node.
                monitor = vm.heap.fatten(obj, name=obj_name)

        if monitor.owner is thread:
            monitor.recursion += 1
            thread.pc += 1
            return

        if not self._dimmunix_admission(thread, monitor):
            return  # parked (yield), faulted, or left blocked by policy

        self._acquire_or_block(thread, monitor, ("enter", monitor))

    def _thin_enter(self, thread: VMThread, obj) -> bool:
        """Vanilla thin-lock acquire. Returns True when handled thin.

        Uncontended: set/bump the thin word. Contended (or recursion
        overflow): inflate, migrating the thin owner and count into the
        new monitor, and return False so the fat path takes over.
        """
        vm = self._vm
        word = obj.lock_word
        owner_id = lockword.thin_owner(word)
        if owner_id == 0:
            obj.lock_word = lockword.make_thin(thread.local_id, 1)
            thread.sync_count += 1
            vm.note_sync(thread)
            thread.pc += 1
            return True
        if owner_id == thread.local_id:
            count = lockword.thin_count(word)
            if count < lockword.MAX_THIN_COUNT:
                obj.lock_word = lockword.make_thin(thread.local_id, count + 1)
                thread.pc += 1
                return True
        # Contention (or count overflow): inflate and migrate.
        self._inflate_thin(obj)
        return False

    def _inflate_thin(self, obj) -> None:
        vm = self._vm
        word = obj.lock_word
        owner_id = lockword.thin_owner(word)
        count = lockword.thin_count(word)
        monitor = vm.heap.fatten(obj)
        if owner_id != 0:
            owner = vm.thread_by_local_id(owner_id)
            assert owner is not None, "thin owner vanished"
            monitor.owner = owner
            monitor.recursion = count

    def _thin_exit(self, thread: VMThread, obj) -> bool:
        """Vanilla thin-lock release. Returns True when handled thin."""
        word = obj.lock_word
        if lockword.is_fat(word):
            return False
        if lockword.thin_owner(word) != thread.local_id:
            return False  # caller reports the illegal state
        count = lockword.thin_count(word)
        if count > 1:
            obj.lock_word = lockword.make_thin(thread.local_id, count - 1)
        else:
            obj.lock_word = lockword.UNLOCKED_WORD
        thread.pc += 1
        return True

    def _dimmunix_admission(self, thread: VMThread, monitor: Monitor) -> bool:
        """Run Request (detection + avoidance). True = proceed to acquire."""
        vm = self._vm
        core = vm.core
        if core is None:
            return True
        vm.charge(thread, vm.config.stack_retrieval_cost)
        stack = thread.capture_stack(core.config.stack_depth)
        match_steps_before = core.stats.matching_steps
        checks_before = core.stats.instantiation_checks
        result = core.request(thread.node, monitor.node, stack)
        self._check_accum += (
            core.stats.instantiation_checks - checks_before
        )
        check_ticks, self._check_accum = divmod(
            self._check_accum, vm.config.checks_per_tick
        )
        vm.charge(
            thread,
            vm.config.request_base_cost
            + vm.config.match_step_cost
            * (core.stats.matching_steps - match_steps_before)
            + check_ticks,
        )
        if result.resume:
            vm.wake_resumed(result.resume)
        if result.detected is not None:
            vm.record_detection(result.detected)
            if core.config.detection_policy is DetectionPolicy.RAISE:
                core.cancel_request(thread.node, monitor.node)
                vm.fault_thread(thread, DeadlockDetectedError(result.detected))
                return False
            # BLOCK (paper-faithful): proceed into the deadlock; the
            # phone will freeze and the signature is already persisted.
            return True
        if result.verdict is RequestVerdict.YIELD:
            assert result.yield_on is not None
            thread.state = ThreadState.YIELDING
            thread.yielding_on = result.yield_on
            vm.park_on_signature(thread, result.yield_on)
            if vm.config.yield_timeout_ticks is not None:
                vm.timers.arm(
                    vm.clock + vm.config.yield_timeout_ticks,
                    "yield-timeout",
                    thread,
                )
            return False
        return True

    def _acquire_or_block(
        self, thread: VMThread, monitor: Monitor, continuation: tuple
    ) -> None:
        vm = self._vm
        if monitor.is_free():
            self._complete_grant(thread, monitor, continuation)
        else:
            monitor.entry_queue.append(thread)
            thread.state = ThreadState.BLOCKED
            thread.continuation = continuation

    def _complete_grant(
        self, thread: VMThread, monitor: Monitor, continuation: tuple
    ) -> None:
        """Finish a monitorenter (fresh or post-wait) for ``thread``."""
        vm = self._vm
        monitor.owner = thread
        if continuation[0] == "enter":
            monitor.recursion = 1
            thread.sync_count += 1
            vm.note_sync(thread)
        else:  # ("reacquire", monitor, saved_recursion)
            monitor.recursion = continuation[2]
            thread.wait_reacquisitions += 1
        if vm.core is not None:
            vm.core.acquired(thread.node, monitor.node)
        # The VM implements monitor ownership on a backing pthread mutex;
        # under naive ALWAYS interception this call is double-intercepted
        # (the hazard §4 warns about), otherwise it is a no-op.
        vm.pthreads.vm_internal_lock(thread, monitor)
        thread.continuation = None
        thread.pc += 1
        thread.state = ThreadState.RUNNABLE

    def grant_next(self, monitor: Monitor) -> None:
        """Hand a free monitor to the next blocked thread, if any."""
        vm = self._vm
        while monitor.entry_queue:
            candidate = monitor.entry_queue.popleft()
            if not candidate.is_live():
                continue
            continuation = candidate.continuation
            assert continuation is not None and continuation[1] is monitor
            self._complete_grant(candidate, monitor, continuation)
            vm.enqueue(candidate)
            return

    # ------------------------------------------------------------------
    # unlockMonitor
    # ------------------------------------------------------------------

    def monitor_exit(self, thread: VMThread, instr: ins.MonitorExit) -> None:
        vm = self._vm
        obj_name = ins.effective_object(instr, thread.registers)
        obj = vm.heap.ensure(obj_name)
        vm.charge(thread, vm.config.monitor_cost)
        if vm.core is None and not lockword.is_fat(obj.lock_word):
            if self._thin_exit(thread, obj):
                return
        monitor = vm.heap.monitor_of(obj)
        if monitor is None or monitor.owner is not thread:
            vm.fault_thread(
                thread,
                IllegalMonitorStateError(
                    f"{thread.name} does not own monitor of {obj_name!r}"
                ),
            )
            return
        if monitor.recursion > 1:
            monitor.recursion -= 1
            thread.pc += 1
            return
        self._release(thread, monitor)
        thread.pc += 1

    def _release(self, thread: VMThread, monitor: Monitor) -> None:
        """Final release: Dimmunix Release + signature notifications (§4)."""
        vm = self._vm
        core = vm.core
        if core is not None:
            result = core.release(thread.node, monitor.node)
            vm.charge(thread, vm.config.release_base_cost)
            for signature in result.notify:
                vm.wake_signature(signature)
        vm.pthreads.vm_internal_unlock(thread, monitor)
        monitor.owner = None
        monitor.recursion = 0
        self.grant_next(monitor)

    # ------------------------------------------------------------------
    # waitMonitor
    # ------------------------------------------------------------------

    def monitor_wait(self, thread: VMThread, instr: ins.Wait) -> None:
        vm = self._vm
        obj_name = ins.effective_object(instr, thread.registers)
        obj = vm.heap.ensure(obj_name)
        if vm.core is None and not lockword.is_fat(obj.lock_word):
            # Object.wait() always inflates (a wait set needs a monitor).
            self._inflate_thin(obj)
        monitor = vm.heap.monitor_of(obj)
        vm.charge(thread, vm.config.monitor_cost)
        if monitor is None or monitor.owner is not thread:
            vm.fault_thread(
                thread,
                IllegalMonitorStateError(
                    f"{thread.name} cannot wait on un-owned {obj_name!r}"
                ),
            )
            return
        saved_recursion = monitor.recursion
        self._release(thread, monitor)
        monitor.wait_set.append(thread)
        thread.state = ThreadState.WAITING
        thread.waiting_monitor = monitor
        thread.continuation = ("reacquire", monitor, saved_recursion)
        thread.wait_count += 1
        if instr.timeout is not None:
            vm.timers.arm(
                vm.clock + instr.timeout, "wait-timeout", thread
            )
        # pc stays at the WAIT instruction: the reacquisition position is
        # the x.wait() call site, as in the paper's waitMonitor patch.

    def monitor_notify(self, thread: VMThread, instr: ins.Notify) -> None:
        vm = self._vm
        obj_name = ins.effective_object(instr, thread.registers)
        obj = vm.heap.ensure(obj_name)
        vm.charge(thread, vm.config.notify_cost)
        if vm.core is None and not lockword.is_fat(obj.lock_word):
            # Thin lock: no wait set can exist; just validate ownership.
            if lockword.thin_owner(obj.lock_word) == thread.local_id:
                thread.pc += 1
                return
        monitor = vm.heap.monitor_of(obj)
        if monitor is None or monitor.owner is not thread:
            vm.fault_thread(
                thread,
                IllegalMonitorStateError(
                    f"{thread.name} cannot notify un-owned {obj_name!r}"
                ),
            )
            return
        to_wake = (
            len(monitor.wait_set) if instr.wake_all else min(1, len(monitor.wait_set))
        )
        for _ in range(to_wake):
            waiter = monitor.wait_set.popleft()
            waiter.waiting_monitor = None
            waiter.state = ThreadState.RUNNABLE
            vm.enqueue(waiter)
        thread.pc += 1

    def wait_timed_out(self, thread: VMThread) -> None:
        """A timed Object.wait() expired before any notify."""
        monitor = thread.waiting_monitor
        if monitor is None or thread.state != ThreadState.WAITING:
            return  # stale timer: the thread was notified first
        try:
            monitor.wait_set.remove(thread)
        except ValueError:
            pass
        thread.waiting_monitor = None
        thread.state = ThreadState.RUNNABLE
        self._vm.enqueue(thread)

    # ------------------------------------------------------------------
    # post-wait / post-yield resumption
    # ------------------------------------------------------------------

    def resume_reacquire(self, thread: VMThread) -> None:
        """A notified (or timed-out) waiter reattempts monitor entry.

        This is the code path the paper had to add to ``waitMonitor``:
        the reacquisition runs the full Request/Acquired protocol.
        """
        continuation = thread.continuation
        assert continuation is not None and continuation[0] == "reacquire"
        monitor: Monitor = continuation[1]
        vm = self._vm
        vm.charge(thread, vm.config.monitor_cost)
        if not self._dimmunix_admission(thread, monitor):
            return
        self._acquire_or_block(thread, monitor, continuation)
