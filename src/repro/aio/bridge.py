"""Cross-domain locks: one mutex, OS threads *and* asyncio tasks.

The platform-wide claim needs one RAG spanning every execution domain.
Same-domain cycles are covered by the per-layer locks; the cycles *no
per-domain detector sees* are the mixed ones — a worker thread holding a
lock a task awaits while the task holds a lock the thread wants. Those
require a lock both domains can acquire, which neither ``threading.Lock``
(blocks the event loop) nor ``asyncio.Lock`` (unusable off-loop) offers.

:class:`CrossDomainLock` is that primitive. It owns one raw mutex and
one RAG :class:`~repro.core.node.LockNode`, and exposes both protocols:

* ``with xlock:`` from an OS thread — the thread runtime's adapter runs
  detection/avoidance under the thread's node, then blocks in the raw
  acquire like any :class:`~repro.runtime.locks.DimmunixLock`;
* ``async with xlock:`` from a task — the aio adapter runs the same
  engine calls under the *task's* node, then acquires the raw mutex with
  a cooperative poll, so the event loop never blocks while waiting on a
  thread-held lock.

Because both runtimes must drive **one engine** (an
:meth:`~repro.aio.runtime.AsyncioDimmunixRuntime.attached` pair), a
mixed cycle — task holds X, awaits Y; thread holds Y, requests X — is an
ordinary RAG cycle: detected at the closing request, recorded, and
avoided on re-runs exactly like a single-domain deadlock.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Optional

from repro.core.callstack import CallStack
from repro.runtime import _originals
from repro.runtime.callsite import resolve_stack
from repro.runtime.runtime import DimmunixRuntime

if TYPE_CHECKING:
    from repro.aio.runtime import AsyncioDimmunixRuntime


class CrossDomainLock:
    """A mutex shared by threads and tasks, with one RAG node."""

    def __init__(
        self,
        runtime: DimmunixRuntime,
        aio_runtime: "AsyncioDimmunixRuntime",
        name: str = "",
        poll_interval: float = 0.001,
    ) -> None:
        if (
            aio_runtime.core is not runtime.core
            or aio_runtime.adapter._glock is not runtime.adapter._glock
        ):
            raise ValueError(
                "CrossDomainLock needs one shared engine under one "
                "global lock: build the aio runtime with "
                "AsyncioDimmunixRuntime.attached(runtime) "
                "(or Dimmunix.aio(cross_domain=True))"
            )
        self._runtime = runtime
        self._aio_runtime = aio_runtime
        self._thread_adapter = runtime.adapter
        self._aio_adapter = aio_runtime.adapter
        self._raw = _originals.Lock()
        self._enabled = runtime.config.enabled
        self._depth = runtime.config.stack_depth
        self._poll_interval = poll_interval
        self.node = (
            self._thread_adapter.new_lock_node(name) if self._enabled else None
        )
        self.name = name or (self.node.name if self.node else "cross-lock")

    # -- thread side -------------------------------------------------------

    def acquire(
        self,
        blocking: bool = True,
        timeout: float = -1,
        site_id: Optional[int] = None,
        stack: Optional["CallStack"] = None,
    ) -> bool:
        """Acquire from an OS thread (never call this from a coroutine)."""
        if not self._enabled:
            if timeout >= 0:
                return self._raw.acquire(blocking, timeout)
            return self._raw.acquire(blocking)
        if stack is None:
            stack = resolve_stack(
                self._depth, site_id, self._runtime.static_sites, skip=1
            )
        allowed = self._thread_adapter.before_acquire(
            self.node, stack, wait=blocking
        )
        if not allowed:
            return False
        if timeout >= 0:
            got_it = self._raw.acquire(blocking, timeout)
        else:
            got_it = self._raw.acquire(blocking)
        if got_it:
            self._thread_adapter.after_acquire(self.node)
        else:
            self._thread_adapter.abandon_acquire(self.node)
        return got_it

    def release(self) -> None:
        """Release from the owning OS thread."""
        if self._enabled:
            self._thread_adapter.before_release(self.node)
        self._raw.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.release()

    # -- task side ---------------------------------------------------------

    async def acquire_async(
        self,
        blocking: bool = True,
        site_id: Optional[int] = None,
        stack: Optional["CallStack"] = None,
    ) -> bool:
        """Acquire from an asyncio task without blocking the event loop.

        The engine request runs under the task's node; the physical
        acquisition is a cooperative try-lock poll, so a thread-held
        mutex suspends only this task.
        """
        if not self._enabled:
            return await self._poll_raw(blocking)
        if stack is None:
            stack = resolve_stack(
                self._depth, site_id, self._aio_runtime.static_sites, skip=1
            )
        allowed = await self._aio_adapter.before_acquire(
            self.node, stack, wait=blocking
        )
        if not allowed:
            return False
        try:
            got_it = await self._poll_raw(blocking)
        except asyncio.CancelledError:
            self._aio_adapter.abandon_acquire(self.node)
            raise
        if got_it:
            self._aio_adapter.after_acquire(self.node)
        else:
            self._aio_adapter.abandon_acquire(self.node)
        return got_it

    async def _poll_raw(self, blocking: bool) -> bool:
        if self._raw.acquire(False):
            return True
        if not blocking:
            return False
        while not self._raw.acquire(False):
            await asyncio.sleep(self._poll_interval)
        return True

    def release_async(self) -> None:
        """Release from the owning task (synchronous, never suspends)."""
        if self._enabled:
            self._aio_adapter.before_release(self.node)
        self._raw.release()

    async def __aenter__(self) -> "CrossDomainLock":
        await self.acquire_async()
        return self

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        self.release_async()

    # -- introspection -----------------------------------------------------

    def locked(self) -> bool:
        return self._raw.locked()

    def __repr__(self) -> str:
        state = "locked" if self.locked() else "unlocked"
        return f"<CrossDomainLock {self.name} {state}>"


__all__ = ["CrossDomainLock"]
