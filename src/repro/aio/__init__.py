"""repro.aio — deadlock immunity for asyncio coroutine tasks.

The sixth adapter layer: the same immunity loop threads get
(:mod:`repro.runtime`), for the execution units the threading layers
cannot see. An :class:`AsyncioDimmunixRuntime` drives one event loop's
tasks through the shared :class:`~repro.core.engine.DimmunixCore`
algorithm — task identity via ``asyncio.current_task`` +
``add_done_callback``, cooperative yields (a parked task awaits instead
of blocking the loop's thread), cancellation routed through the engine
so no RAG edge leaks — and
:meth:`AsyncioDimmunixRuntime.attached` joins an existing thread
runtime's engine so tasks and OS threads form *one* RAG: mixed
thread+task cycles are detected and avoided like any other.

Entry points:

* :class:`AsyncioDimmunixRuntime` — per-event-loop runtime; factories
  :meth:`~AsyncioDimmunixRuntime.lock`,
  :meth:`~AsyncioDimmunixRuntime.rlock`,
  :meth:`~AsyncioDimmunixRuntime.condition`.
* :mod:`repro.aio.patch` — opt-in process-wide patch of
  ``asyncio.Lock`` / ``asyncio.Condition``.
* :mod:`repro.aio.scenarios` — async dining philosophers, the
  looper-style message/handler inversion, and the minimal AB/BA pair.

Or start from the session facade: ``repro.immunity()`` exposes this
layer as ``dx.aio()`` / ``dx.aio_lock()`` / ``dx.aio_condition()``.
"""

from repro.aio.adapter import AioRuntimeAdapter
from repro.aio.bridge import CrossDomainLock
from repro.aio.condition import AioDimmunixCondition
from repro.aio.locks import AioDimmunixLock, AioDimmunixRLock
from repro.aio.runtime import (
    AsyncioDimmunixRuntime,
    get_aio_runtime,
    init_aio_runtime,
    reset_aio_runtime,
)

__all__ = [
    "AioRuntimeAdapter",
    "CrossDomainLock",
    "AioDimmunixLock",
    "AioDimmunixRLock",
    "AioDimmunixCondition",
    "AsyncioDimmunixRuntime",
    "get_aio_runtime",
    "init_aio_runtime",
    "reset_aio_runtime",
]
