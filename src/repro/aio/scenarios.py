"""Classic deadlock scenarios on the asyncio adapter layer.

* :func:`run_async_dining_philosophers` — N philosopher *tasks*, N
  immunized asyncio locks, everyone grabs left-then-right. Cooperative
  scheduling makes round one deterministic: every task picks up its left
  fork, the N-th right-fork request closes the full cycle, the signature
  is recorded, and later dinners complete on avoidance alone.
* :class:`AsyncLooper` + :func:`run_looper_inversion` — the looper-style
  message/handler deadlock mirroring :mod:`repro.android.looper`: two
  message loops whose handlers synchronously send to each other *while
  holding their own queue monitor* (the faithful-but-buggy dispatch that
  wedges real handler threads). The cross-send closes a two-monitor
  cycle between tasks.
* :func:`run_opposite_order_pair` — the minimal two-task AB/BA
  inversion, the cooperative twin of the threaded integration scenario;
  used by the parity suite and the A7 bench.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import DeadlockDetectedError

if TYPE_CHECKING:
    from repro.aio.runtime import AsyncioDimmunixRuntime


# ----------------------------------------------------------------------
# async dining philosophers
# ----------------------------------------------------------------------

@dataclass
class AsyncPhilosopherOutcome:
    """What happened at the (cooperative) table."""

    meals_eaten: int
    deadlocks_detected: int
    completed: bool
    errors: list = field(default_factory=list)


async def run_async_dining_philosophers(
    runtime: "AsyncioDimmunixRuntime",
    philosophers: int = 5,
    meals: int = 3,
    join_timeout: float = 20.0,
) -> AsyncPhilosopherOutcome:
    """Everyone grabs the left fork, then the right — as tasks.

    Under ``RAISE`` detection the task whose request closes the cycle
    gets a :class:`DeadlockDetectedError`, drops its fork, retries, and
    dinner finishes; the recorded signature immunizes later dinners,
    which complete on avoidance alone (tests assert both).
    """
    forks = [runtime.lock(f"aio-fork-{index}") for index in range(philosophers)]
    outcome = AsyncPhilosopherOutcome(0, 0, False)

    async def dine(seat: int) -> None:
        left = forks[seat]
        right = forks[(seat + 1) % philosophers]
        eaten = 0
        while eaten < meals:
            await asyncio.sleep(0)
            try:
                async with left:
                    # The interleaving point: hand the loop to the other
                    # philosophers before reaching for the right fork.
                    await asyncio.sleep(0)
                    async with right:
                        eaten += 1
                        outcome.meals_eaten += 1
            except DeadlockDetectedError:
                outcome.deadlocks_detected += 1
                await asyncio.sleep(0)

    tasks = [
        asyncio.ensure_future(dine(seat)) for seat in range(philosophers)
    ]
    for seat, task in enumerate(tasks):
        task.set_name(f"aio-philosopher-{seat}")
    done, pending = await asyncio.wait(tasks, timeout=join_timeout)
    outcome.completed = not pending
    for task in pending:
        task.cancel()
    if pending:
        await asyncio.gather(*pending, return_exceptions=True)
    for task in done:
        error = task.exception()
        if error is not None:
            outcome.errors.append(error)
    return outcome


# ----------------------------------------------------------------------
# looper-style message/handler inversion (repro.android.looper, as tasks)
# ----------------------------------------------------------------------

@dataclass
class LooperOutcome:
    """Result of a looper-inversion run."""

    handled: int
    deadlocks_detected: int
    completed: bool


class AsyncLooper:
    """A message loop: monitor-guarded queue + a handler coroutine.

    The dispatch deliberately reproduces the pattern that wedges real
    handler threads: ``loop()`` runs the handler *while still holding
    the queue monitor*, so a handler that synchronously sends to another
    looper acquires that looper's monitor under its own — the two-monitor
    inversion of the StatusBar deadlock, on the cooperative schedule.
    """

    def __init__(
        self,
        runtime: "AsyncioDimmunixRuntime",
        name: str,
        serial: bool = False,
    ) -> None:
        self.name = name
        self.condition = runtime.condition()
        self.queue: deque = deque()
        self.handled = 0
        self.serial = serial

    async def send(self, message) -> None:
        """Handler.sendMessage: enqueue one message and wake the looper."""
        async with self.condition:
            self.queue.append(message)
            self.condition.notify_all()

    async def loop(self, handler, messages_to_handle: int) -> None:
        """Looper.loop(): dispatch ``handler`` once per message."""
        while self.handled < messages_to_handle:
            async with self.condition:
                while not self.queue:
                    await self.condition.wait()
                message = self.queue.popleft()
                # Yield once before dispatch so peer loopers reach their
                # own dispatch too — then run the handler under the
                # monitor (the bug). A *serial* looper skips the yield:
                # dispatches never overlap, the run cannot deadlock, and
                # the cross-send reversal still lands in the event
                # stream for the trace miner.
                if not self.serial:
                    await asyncio.sleep(0)
                try:
                    await handler(message)
                except DeadlockDetectedError:
                    # Redelivery: the dispatch backed off, the message
                    # must not be lost or the retry starves.
                    self.queue.appendleft(message)
                    raise
            self.handled += 1


async def run_looper_inversion(
    runtime: "AsyncioDimmunixRuntime",
    messages: int = 1,
    join_timeout: float = 10.0,
    serial: bool = False,
) -> LooperOutcome:
    """Two loopers whose handlers synchronously cross-send.

    Each handler, dispatched under its own queue monitor, sends to the
    peer looper — taking the peer's monitor. Run concurrently the two
    dispatches deadlock; with immunity the cycle is detected once and
    the retried dispatch (and every later run) completes.

    ``serial=True`` runs the loopers without the pre-dispatch yield, so
    the two dispatches never overlap and the run completes without any
    deadlock — while both cross-monitor acquisition orders still appear
    in the event stream, which is what the trace miner predicts the
    inversion from.
    """
    outcome = LooperOutcome(0, 0, False)
    looper_a = AsyncLooper(runtime, "looper-a", serial=serial)
    looper_b = AsyncLooper(runtime, "looper-b", serial=serial)

    async def handle_a(message) -> None:
        if message[0] == "ping":
            await looper_b.send(("pong", looper_a.name))

    async def handle_b(message) -> None:
        if message[0] == "ping":
            await looper_a.send(("pong", looper_b.name))

    async def drive(looper: AsyncLooper, handler, expected: int) -> None:
        while looper.handled < expected:
            try:
                await looper.loop(handler, expected)
            except DeadlockDetectedError:
                outcome.deadlocks_detected += 1
                await asyncio.sleep(0)

    # Prime both queues with a ping, then one pong each comes back.
    await looper_a.send(("ping", "main"))
    await looper_b.send(("ping", "main"))
    expected = 2 * messages
    tasks = [
        asyncio.ensure_future(drive(looper_a, handle_a, expected)),
        asyncio.ensure_future(drive(looper_b, handle_b, expected)),
    ]
    tasks[0].set_name("aio-looper-a")
    tasks[1].set_name("aio-looper-b")
    done, pending = await asyncio.wait(tasks, timeout=join_timeout)
    outcome.completed = not pending
    for task in pending:
        task.cancel()
    if pending:
        await asyncio.gather(*pending, return_exceptions=True)
    outcome.handled = looper_a.handled + looper_b.handled
    return outcome


# ----------------------------------------------------------------------
# the minimal AB/BA pair (parity suite, A7 bench)
# ----------------------------------------------------------------------

@dataclass
class PairOutcome:
    """Result of one opposite-order run."""

    finished: list
    deadlocks_detected: int


async def run_opposite_order_pair(
    runtime: "AsyncioDimmunixRuntime",
    serial: bool = False,
) -> PairOutcome:
    """Two tasks taking two locks in opposite orders, deterministically.

    Cooperative scheduling pins the interleaving: both tasks take their
    first lock, then both request the other's — the second request
    closes the cycle on run 1 and parks on the antibody on run 2.

    ``serial=True`` runs the two tasks back to back instead of
    concurrently: no deadlock is possible, but the opposite acquisition
    orders — two distinct tasks, disjoint gate sets — are exactly the
    reversal the trace miner mints the AB/BA signature from.
    """
    lock_a = runtime.lock("pair-a")
    lock_b = runtime.lock("pair-b")
    outcome = PairOutcome([], 0)

    async def ab() -> None:
        try:
            async with lock_a:
                await asyncio.sleep(0)
                async with lock_b:
                    outcome.finished.append("ab")
        except DeadlockDetectedError:
            outcome.deadlocks_detected += 1

    async def ba() -> None:
        try:
            async with lock_b:
                await asyncio.sleep(0)
                async with lock_a:
                    outcome.finished.append("ba")
        except DeadlockDetectedError:
            outcome.deadlocks_detected += 1

    first = asyncio.ensure_future(ab())
    first.set_name("aio-pair-ab")
    if serial:
        await first
    second = asyncio.ensure_future(ba())
    second.set_name("aio-pair-ba")
    await asyncio.gather(first, second)
    return outcome
