"""The per-event-loop Dimmunix runtime facade for asyncio.

One :class:`AsyncioDimmunixRuntime` is one paper-style Dimmunix adapter
instance for coroutine tasks: it owns (or joins) the core engine, the
cooperative adapter, and the static-site registry, and it is what the
session facade's ``aio`` layer hands out. Two construction modes:

* **Own engine** (default): the runtime builds its own
  :class:`~repro.core.engine.DimmunixCore`, typically bound to a
  session-shared config/history/event-bus — immunity crosses adapter
  layers through the shared history, and the aio layer's events are
  tagged with its own source name (``"<session>/aio"``).
* **Attached** (:meth:`AsyncioDimmunixRuntime.attached`): the runtime
  joins an existing thread runtime's engine *and its global lock*. Tasks
  and OS threads then share one RAG — a mixed thread+task cycle is
  detected and avoided like any single-domain cycle. Events from both
  domains carry the host runtime's source.

The module also manages a process-default instance for the opt-in
``asyncio`` patch (:mod:`repro.aio.patch`), mirroring
:mod:`repro.runtime.runtime`.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional

from repro.aio.adapter import AioRuntimeAdapter
from repro.aio.condition import AioDimmunixCondition
from repro.aio.locks import AioDimmunixLock, AioDimmunixRLock
from repro.config import DimmunixConfig
from repro.core.engine import DimmunixCore
from repro.core.events import EventBus
from repro.core.history import History
from repro.core.signature import DeadlockSignature
from repro.core.stats import DimmunixStats
from repro.runtime import _originals
from repro.runtime.callsite import PositionCache, StaticSiteRegistry
from repro.runtime.runtime import DimmunixRuntime


class AsyncioDimmunixRuntime:
    """Deadlock immunity for the asyncio tasks of one event loop."""

    def __init__(
        self,
        config: Optional[DimmunixConfig] = None,
        history: Optional[History] = None,
        name: str = "aio",
        events: Optional[EventBus] = None,
        *,
        core: Optional[DimmunixCore] = None,
        glock=None,
    ) -> None:
        self.name = name
        if core is not None:
            # Joining an existing engine (cross-domain mode): config,
            # history, and event source are the host's. The host
            # adapter's global lock is mandatory — a second lock over
            # one engine would un-serialize RAG mutations and let a
            # task-side release notify the thread adapter's conditions
            # without holding their lock. ``attached()`` passes both.
            if glock is None:
                raise ValueError(
                    "joining an existing engine requires its adapter's "
                    "global lock; use AsyncioDimmunixRuntime.attached("
                    "runtime) instead of passing core= directly"
                )
            self.config = core.config
            self.core = core
            self._owns_core = False
        else:
            self.config = config or DimmunixConfig()
            self.core = DimmunixCore(
                self.config,
                history,
                events=events,
                source=name,
                clock=time.monotonic,
            )
            self._owns_core = True
        self.adapter = AioRuntimeAdapter(self.core, glock=glock)
        self.static_sites = StaticSiteRegistry()
        # Same wiring rule as the thread runtime: the cache resolves
        # depth-1 dynamic positions only. In attached mode self.config is
        # the host's, so both adapter layers make the same decision.
        self.position_cache = (
            PositionCache(self.adapter.resolve_position)
            if (
                self.config.enabled
                and self.config.position_cache
                and self.config.stack_depth == 1
                and not self.config.static_ids
            )
            else None
        )

    @classmethod
    def attached(
        cls, runtime: DimmunixRuntime, name: Optional[str] = None
    ) -> "AsyncioDimmunixRuntime":
        """An aio runtime sharing ``runtime``'s engine and global lock.

        This is the cross-domain configuration: every engine call from
        either adapter is serialized under the thread adapter's lock, so
        tasks and threads form one RAG and a worker thread holding a
        lock a task awaits (or vice versa) closes a detectable cycle.
        """
        return cls(
            name=name or f"{runtime.name}/aio",
            core=runtime.core,
            glock=runtime.adapter._glock,
        )

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------

    def lock(self, name: str = "") -> AioDimmunixLock:
        """An immunized ``asyncio.Lock`` replacement."""
        return AioDimmunixLock(self, name)

    def rlock(self, name: str = "") -> AioDimmunixRLock:
        """An immunized task-reentrant lock (asyncio has no stdlib one)."""
        return AioDimmunixRLock(self, name)

    def condition(self, lock=None) -> AioDimmunixCondition:
        """An immunized ``asyncio.Condition`` replacement."""
        return AioDimmunixCondition(lock, runtime=self)

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    @property
    def history(self) -> History:
        return self.core.history

    @property
    def stats(self) -> DimmunixStats:
        return self.core.stats

    @property
    def events(self) -> EventBus:
        """The typed event stream of this runtime's core."""
        return self.core.events

    def subscribe(self, callback, *, kinds=None, source=None):
        """Subscribe to this runtime's event stream (see EventBus)."""
        return self.core.events.subscribe(callback, kinds=kinds, source=source)

    def unsubscribe(self, subscription) -> bool:
        return self.core.events.unsubscribe(subscription)

    @property
    def detections(self) -> tuple[DeadlockSignature, ...]:
        """Signatures recorded by detection since this runtime started."""
        return self.adapter.detections

    def save_history(self, path: Optional[Path | str] = None) -> Path:
        """Persist the history (defaults to the backing location)."""
        return self.history.persist(
            path
            if path is not None
            else (self.history.location or self.config.history_location())
        )

    def flush_history(self) -> int:
        """Flush pending antibodies to the backing store now."""
        return self.core.flush_history()

    def close(self) -> None:
        """Detach from the engine (and tear it down when it is ours)."""
        self.core.remove_waker(self.adapter._waker)
        if self._owns_core:
            self.core.detach_events()

    def __repr__(self) -> str:
        snap = self.core.snapshot()
        mode = "own-engine" if self._owns_core else "attached"
        return (
            f"<AsyncioDimmunixRuntime {self.name} ({mode}): "
            f"{self.adapter.registered_tasks} tasks, "
            f"{snap.history_size} signatures>"
        )


# ----------------------------------------------------------------------
# process-default aio runtime (what the asyncio patch binds to)
# ----------------------------------------------------------------------

_default_aio_runtime: Optional[AsyncioDimmunixRuntime] = None
_default_guard = _originals.Lock()


def init_aio_runtime(
    config: Optional[DimmunixConfig] = None,
    history: Optional[History] = None,
    name: str = "aio-main",
) -> AsyncioDimmunixRuntime:
    """(Re)initialize the process-default aio runtime."""
    global _default_aio_runtime
    with _default_guard:
        _default_aio_runtime = AsyncioDimmunixRuntime(config, history, name)
        return _default_aio_runtime


def get_aio_runtime() -> AsyncioDimmunixRuntime:
    """The process-default aio runtime, created on first use."""
    global _default_aio_runtime
    if _default_aio_runtime is None:
        with _default_guard:
            if _default_aio_runtime is None:
                _default_aio_runtime = AsyncioDimmunixRuntime(name="aio-main")
    return _default_aio_runtime


def reset_aio_runtime() -> None:
    """Drop the process-default aio runtime (tests)."""
    global _default_aio_runtime
    with _default_guard:
        _default_aio_runtime = None
