"""Immunized lock types for ``asyncio`` code.

:class:`AioDimmunixLock` corresponds to a non-reentrant ``asyncio.Lock``;
:class:`AioDimmunixRLock` to a task-reentrant monitor (recursive
acquisitions by the owning task do not re-enter Dimmunix, exactly like
nested ``monitorenter`` on an owned monitor in the VM — asyncio has no
stdlib RLock, but looper-style handler code wants one).

Each lock owns its RAG :class:`~repro.core.node.LockNode` for its
lifetime — the paper's "node field embedded in the Monitor struct" — and
every acquisition funnels through
:meth:`~repro.aio.adapter.AioRuntimeAdapter.before_acquire`, so detection
and avoidance run on the *cooperative* schedule: a parked task returns
control to the event loop instead of blocking its thread.

Both types are drop-in compatible with ``asyncio.Lock`` (``await
lock.acquire()``, ``async with lock:``, ``locked()``), which is what lets
:mod:`repro.aio.patch` substitute them process-wide. They accept the
extra keywords ``site_id`` (the paper's §4 static synchronization-site
ids) and ``blocking=False`` (try-lock semantics, an extension asyncio
lacks but avoidance needs for parity with the thread layer).
"""

from __future__ import annotations

import asyncio
import time
from typing import TYPE_CHECKING, Optional

from asyncio.events import get_running_loop as _get_running_loop
from asyncio.tasks import _current_tasks

from repro.aio import _originals
from repro.core.callstack import CallStack
from repro.core.position import _QueueCell
from repro.errors import DeadlockDetectedError
from repro.runtime.callsite import resolve_stack
from repro.runtime.locks import LostRestoreMarker

if TYPE_CHECKING:
    from repro.aio.runtime import AsyncioDimmunixRuntime


class AioDimmunixLock:
    """An ``asyncio.Lock`` with deadlock immunity."""

    _reentrant = False

    def __init__(
        self, runtime: "AsyncioDimmunixRuntime", name: str = ""
    ) -> None:
        self._runtime = runtime
        self._adapter = runtime.adapter
        self._raw = _originals.Lock()
        self._enabled = runtime.config.enabled
        self._depth = runtime.config.stack_depth
        # Cached at construction so the acquire path's telemetry guard
        # is one attribute load (None when telemetry is off).
        self._telemetry = self._adapter.core.telemetry if self._enabled else None
        # Capture fast path wiring — see DimmunixLock. In attached mode
        # the aio runtime builds its own cache over the shared engine,
        # so both adapter layers resolve to the same Position table.
        self._cache = getattr(runtime, "position_cache", None) if self._enabled else None
        self._fast_path = runtime.config.fast_path and self._cache is not None
        # Pre-bound hot-path methods — see DimmunixLock. The acquire
        # fast branch additionally inlines the adapter's node probe and
        # glock section (saving one call frame per acquire), so it
        # pre-binds the adapter internals it reaches through.
        self._lookup = self._cache.lookup_or_resolve if self._cache is not None else None
        self._fast_book = self._adapter.fast_acquired
        self._task_nodes = self._adapter._task_nodes
        glock = self._adapter._glock
        self._glock_acquire = glock.acquire
        self._glock_release = glock.release
        core = self._adapter.core
        self._core_fast = core.fast_acquired
        self._core_history = core.history
        self._core_events = core.events
        self._core_stats = core.stats
        self.node = self._adapter.new_lock_node(name) if self._enabled else None
        self.name = name or (self.node.name if self.node else "aio-lock")
        # Kept on the lock (not the condition) so both monitor
        # spellings are covered by the one ``__aexit__`` that owns the
        # release; keyed by task id instead of thread ident.
        self._lost_restore = LostRestoreMarker()
        # The marker's backing set, tested directly on the fast path
        # (set truthiness beats a __bool__ method call).
        self._lost_set = self._lost_restore._lost

    # -- acquire / release ------------------------------------------------

    async def acquire(
        self,
        blocking: bool = True,
        site_id: Optional[int] = None,
        stack: Optional["CallStack"] = None,
    ) -> bool:
        """Acquire the lock, running Dimmunix detection/avoidance first.

        With ``blocking=False``, avoidance that would park the task — or
        a raw lock that is already held — is reported as "would block"
        (returns ``False``); a try-lock must never suspend, not even for
        immunity. ``stack`` lets callers supply a pre-built position.
        """
        if not self._enabled:
            if not blocking:
                if self._raw.locked():
                    return False
            return await self._raw.acquire()
        if stack is None:
            tel = self._telemetry
            lookup = self._lookup
            if lookup is not None and site_id is None:
                if tel is not None:
                    capture_t0 = time.monotonic_ns()
                    position = lookup()
                    tel.record("capture", time.monotonic_ns() - capture_t0)
                else:
                    position = lookup()
                if position is not None:
                    # No-history fast path, cooperative flavor: a free
                    # asyncio.Lock with no waiters acquires synchronously
                    # (no suspension, no cancellation window), so the
                    # engine can book the hold first and the physical
                    # acquire reduces to flipping _locked — no task
                    # switch can interleave because nothing here awaits.
                    # Waiters present means a handoff is in flight —
                    # fall back to the exact path. The engine refusing
                    # (position went hot) also falls back; nothing
                    # physical happened yet.
                    raw = self._raw
                    if (
                        self._fast_path
                        and not position.in_history
                        and not raw._locked
                        and not raw._waiters
                    ):
                        # The adapter's fast_acquired, inlined on the
                        # probe-hit telemetry-off path (one call frame
                        # fewer); the adapter route stays for probe
                        # misses and for telemetry's glock_wait timing.
                        task = _current_tasks.get(_get_running_loop())
                        task_node = (
                            self._task_nodes.get(id(task))
                            if task is not None
                            else None
                        )
                        if task_node is None or tel is not None:
                            booked = self._fast_book(self.node, position)
                        else:
                            self._glock_acquire()
                            try:
                                # Engine fast_acquired, hot case inlined
                                # under the glock: epoch-valid cold
                                # position, nobody observing the bus.
                                # Any miss (stale epoch, demoted, or an
                                # observed bus that needs the event
                                # pair) delegates to the engine method,
                                # which owns revalidation and emission.
                                lock_node = self.node
                                if (
                                    position.fastpath_epoch
                                    == self._core_history._index_epoch
                                    and not position.in_history
                                    and not self._core_events.lifecycle_observed
                                ):
                                    queue = position.queue
                                    cell = queue._free
                                    if cell is not None:
                                        queue._free = cell.next
                                        queue.reuses += 1
                                    else:
                                        cell = _QueueCell()
                                        queue.allocations += 1
                                    cell.thread = task_node
                                    cell.lock = lock_node
                                    cell.next = queue._head
                                    queue._head = cell
                                    queue.size += 1
                                    lock_node.owner = task_node
                                    lock_node.acq_pos = position
                                    lock_node.acq_stack = position.stack
                                    task_node.held.add(lock_node)
                                    stats = self._core_stats
                                    stats.fastpath_acquires += 1
                                    stats.requests += 1
                                    stats.acquisitions += 1
                                    booked = True
                                else:
                                    booked = self._core_fast(
                                        task_node, lock_node, position
                                    )
                            finally:
                                self._glock_release()
                        if booked:
                            # The physical acquire, inlined: with
                            # _locked False and no waiters,
                            # asyncio.Lock.acquire is exactly this
                            # assignment (plus coroutine machinery we
                            # skip); release()/locked() read the same
                            # attribute.
                            raw._locked = True
                            if self._lost_set:
                                self._lost_set.discard(id(task))
                            return True
                    stack = position.stack
            if stack is None:
                if tel is not None:
                    capture_t0 = time.monotonic_ns()
                    stack = resolve_stack(
                        self._depth, site_id, self._runtime.static_sites, skip=1
                    )
                    tel.record("capture", time.monotonic_ns() - capture_t0)
                else:
                    stack = resolve_stack(
                        self._depth, site_id, self._runtime.static_sites, skip=1
                    )
        allowed = await self._adapter.before_acquire(
            self.node, stack, wait=blocking
        )
        if not allowed:
            return False
        if not blocking and self._raw.locked():
            self._adapter.abandon_acquire(self.node)
            return False
        try:
            # An unlocked asyncio.Lock acquires without suspending, so
            # the non-blocking path above cannot race within one task.
            got_it = await self._raw.acquire()
        except asyncio.CancelledError:
            # Cancelled during the physical await: the engine request
            # must not outlive the acquisition attempt.
            self._adapter.abandon_acquire(self.node)
            raise
        if got_it:
            self._adapter.after_acquire(self.node)
            self._lost_restore.clear(id(asyncio.current_task()))
        else:  # pragma: no cover - asyncio.Lock.acquire only returns True
            self._adapter.abandon_acquire(self.node)
        return got_it

    def release(self) -> None:
        if self._enabled:
            self._adapter.before_release(self.node)
        self._raw.release()

    def locked(self) -> bool:
        return self._raw.locked()

    # -- protocol used by AioDimmunixCondition -----------------------------

    def _is_owned(self) -> bool:
        # asyncio.Lock does not track its owning task; mirror the stdlib
        # asyncio.Condition heuristic: held at all counts as owned.
        return self._raw.locked()

    def _release_save(self) -> None:
        self.release()

    async def _acquire_restore(self, state) -> None:
        # Reacquisition goes through the full Dimmunix path — the paper's
        # waitMonitor change (§3.2) on the cooperative schedule. A
        # detection here (RAISE raising, or a BREAK denial — the only
        # way a blocking acquire returns False) means the monitor stays
        # unheld: mark the task so its ``async with`` exit skips the
        # release instead of masking the error.
        key = id(asyncio.current_task())
        try:
            got_it = await self.acquire()
        except DeadlockDetectedError:
            self._lost_restore.mark(key)
            raise
        if not got_it:
            self._lost_restore.deny(key)

    # -- context manager ---------------------------------------------------

    async def __aenter__(self) -> "AioDimmunixLock":
        await self.acquire()
        return self

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        if self._lost_restore.lost(id(asyncio.current_task())):
            # This task's wait() lost the monitor to an unwound
            # reacquisition; there is nothing to release.
            return
        self.release()

    def __repr__(self) -> str:
        state = "locked" if self.locked() else "unlocked"
        return f"<AioDimmunixLock {self.name} {state}>"


class AioDimmunixRLock:
    """A task-reentrant asyncio lock with deadlock immunity.

    Only the first (non-recursive) acquisition and the final release go
    through Dimmunix; recursive pairs by the owning task are plain
    counter updates, as in a reentrant Java monitor.
    """

    _reentrant = True

    def __init__(
        self, runtime: "AsyncioDimmunixRuntime", name: str = ""
    ) -> None:
        self._runtime = runtime
        self._adapter = runtime.adapter
        self._raw = _originals.Lock()
        self._enabled = runtime.config.enabled
        self._depth = runtime.config.stack_depth
        self._telemetry = self._adapter.core.telemetry if self._enabled else None
        # See AioDimmunixLock: capture fast path wiring.
        self._cache = getattr(runtime, "position_cache", None) if self._enabled else None
        self._fast_path = runtime.config.fast_path and self._cache is not None
        self._lookup = self._cache.lookup_or_resolve if self._cache is not None else None
        self._fast_book = self._adapter.fast_acquired
        self._owner: Optional[int] = None
        self._count = 0
        self.node = self._adapter.new_lock_node(name) if self._enabled else None
        self.name = name or (self.node.name if self.node else "aio-rlock")
        # See AioDimmunixLock: tasks whose reacquisition was unwound.
        self._lost_restore = LostRestoreMarker()

    @staticmethod
    def _me() -> int:
        task = asyncio.current_task()
        if task is None:
            raise RuntimeError(
                "AioDimmunixRLock must be used from inside an asyncio task"
            )
        return id(task)

    async def acquire(
        self,
        blocking: bool = True,
        site_id: Optional[int] = None,
        stack: Optional["CallStack"] = None,
    ) -> bool:
        me = self._me()
        if self._owner == me:
            self._count += 1
            return True
        if self._enabled:
            if stack is None:
                tel = self._telemetry
                lookup = self._lookup
                if lookup is not None and site_id is None:
                    if tel is not None:
                        capture_t0 = time.monotonic_ns()
                        position = lookup()
                        tel.record(
                            "capture", time.monotonic_ns() - capture_t0
                        )
                    else:
                        position = lookup()
                    if position is not None:
                        # See AioDimmunixLock.acquire: free lock, no
                        # waiters, history-cold — book the hold before
                        # the synchronously-completing await.
                        raw = self._raw
                        if (
                            self._fast_path
                            and not position.in_history
                            and not raw._locked
                            and not raw._waiters
                            and self._fast_book(self.node, position)
                        ):
                            # Inlined physical acquire — see
                            # AioDimmunixLock.acquire.
                            raw._locked = True
                            self._owner = me
                            self._count = 1
                            lr = self._lost_restore
                            if lr:
                                lr.clear(me)
                            return True
                        stack = position.stack
                if stack is None:
                    if tel is not None:
                        capture_t0 = time.monotonic_ns()
                        stack = resolve_stack(
                            self._depth,
                            site_id,
                            self._runtime.static_sites,
                            skip=1,
                        )
                        tel.record(
                            "capture", time.monotonic_ns() - capture_t0
                        )
                    else:
                        stack = resolve_stack(
                            self._depth,
                            site_id,
                            self._runtime.static_sites,
                            skip=1,
                        )
            allowed = await self._adapter.before_acquire(
                self.node, stack, wait=blocking
            )
            if not allowed:
                return False
        if not blocking and self._raw.locked():
            if self._enabled:
                self._adapter.abandon_acquire(self.node)
            return False
        try:
            got_it = await self._raw.acquire()
        except asyncio.CancelledError:
            if self._enabled:
                self._adapter.abandon_acquire(self.node)
            raise
        if got_it:
            self._owner = me
            self._count = 1
            if self._enabled:
                self._adapter.after_acquire(self.node)
            self._lost_restore.clear(me)
        elif self._enabled:  # pragma: no cover - acquire only returns True
            self._adapter.abandon_acquire(self.node)
        return got_it

    def release(self) -> None:
        if self._owner != self._me():
            raise RuntimeError("cannot release un-acquired lock")
        self._count -= 1
        if self._count:
            return
        self._owner = None
        if self._enabled:
            self._adapter.before_release(self.node)
        self._raw.release()

    def locked(self) -> bool:
        return self._raw.locked()

    # -- protocol used by AioDimmunixCondition -----------------------------

    def _is_owned(self) -> bool:
        return self._owner == self._me()

    def _release_save(self) -> int:
        """Fully release regardless of recursion depth; return the depth."""
        if self._owner != self._me():
            raise RuntimeError("cannot wait on un-acquired lock")
        count = self._count
        self._count = 0
        self._owner = None
        if self._enabled:
            self._adapter.before_release(self.node)
        self._raw.release()
        return count

    async def _acquire_restore(self, state: int) -> None:
        """Reacquire through the full Dimmunix path, then restore depth.

        A detection here (RAISE raising, or a BREAK denial — the only
        way a blocking acquire returns False) leaves the monitor
        unheld: the task is marked so its ``async with`` exit skips the
        release, and the depth is NOT restored — doing so without
        ownership would corrupt the monitor.
        """
        key = id(asyncio.current_task())
        try:
            got_it = await self.acquire()
        except DeadlockDetectedError:
            self._lost_restore.mark(key)
            raise
        if not got_it:
            self._lost_restore.deny(key)
        self._count = state

    async def __aenter__(self) -> "AioDimmunixRLock":
        await self.acquire()
        return self

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        if self._lost_restore.lost(id(asyncio.current_task())):
            return
        self.release()

    def __repr__(self) -> str:
        return (
            f"<AioDimmunixRLock {self.name} owner={self._owner} "
            f"count={self._count}>"
        )
