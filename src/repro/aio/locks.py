"""Immunized lock types for ``asyncio`` code.

:class:`AioDimmunixLock` corresponds to a non-reentrant ``asyncio.Lock``;
:class:`AioDimmunixRLock` to a task-reentrant monitor (recursive
acquisitions by the owning task do not re-enter Dimmunix, exactly like
nested ``monitorenter`` on an owned monitor in the VM — asyncio has no
stdlib RLock, but looper-style handler code wants one).

Each lock owns its RAG :class:`~repro.core.node.LockNode` for its
lifetime — the paper's "node field embedded in the Monitor struct" — and
every acquisition funnels through
:meth:`~repro.aio.adapter.AioRuntimeAdapter.before_acquire`, so detection
and avoidance run on the *cooperative* schedule: a parked task returns
control to the event loop instead of blocking its thread.

Both types are drop-in compatible with ``asyncio.Lock`` (``await
lock.acquire()``, ``async with lock:``, ``locked()``), which is what lets
:mod:`repro.aio.patch` substitute them process-wide. They accept the
extra keywords ``site_id`` (the paper's §4 static synchronization-site
ids) and ``blocking=False`` (try-lock semantics, an extension asyncio
lacks but avoidance needs for parity with the thread layer).
"""

from __future__ import annotations

import asyncio
import time
from typing import TYPE_CHECKING, Optional

from repro.aio import _originals
from repro.core.callstack import CallStack
from repro.errors import DeadlockDetectedError
from repro.runtime.callsite import resolve_stack
from repro.runtime.locks import LostRestoreMarker

if TYPE_CHECKING:
    from repro.aio.runtime import AsyncioDimmunixRuntime


class AioDimmunixLock:
    """An ``asyncio.Lock`` with deadlock immunity."""

    _reentrant = False

    def __init__(
        self, runtime: "AsyncioDimmunixRuntime", name: str = ""
    ) -> None:
        self._runtime = runtime
        self._adapter = runtime.adapter
        self._raw = _originals.Lock()
        self._enabled = runtime.config.enabled
        self._depth = runtime.config.stack_depth
        # Cached at construction so the acquire path's telemetry guard
        # is one attribute load (None when telemetry is off).
        self._telemetry = self._adapter.core.telemetry if self._enabled else None
        self.node = self._adapter.new_lock_node(name) if self._enabled else None
        self.name = name or (self.node.name if self.node else "aio-lock")
        # Kept on the lock (not the condition) so both monitor
        # spellings are covered by the one ``__aexit__`` that owns the
        # release; keyed by task id instead of thread ident.
        self._lost_restore = LostRestoreMarker()

    # -- acquire / release ------------------------------------------------

    async def acquire(
        self,
        blocking: bool = True,
        site_id: Optional[int] = None,
        stack: Optional["CallStack"] = None,
    ) -> bool:
        """Acquire the lock, running Dimmunix detection/avoidance first.

        With ``blocking=False``, avoidance that would park the task — or
        a raw lock that is already held — is reported as "would block"
        (returns ``False``); a try-lock must never suspend, not even for
        immunity. ``stack`` lets callers supply a pre-built position.
        """
        if not self._enabled:
            if not blocking:
                if self._raw.locked():
                    return False
            return await self._raw.acquire()
        if stack is None:
            tel = self._telemetry
            if tel is not None:
                capture_t0 = time.monotonic_ns()
                stack = resolve_stack(
                    self._depth, site_id, self._runtime.static_sites, skip=1
                )
                tel.record("capture", time.monotonic_ns() - capture_t0)
            else:
                stack = resolve_stack(
                    self._depth, site_id, self._runtime.static_sites, skip=1
                )
        allowed = await self._adapter.before_acquire(
            self.node, stack, wait=blocking
        )
        if not allowed:
            return False
        if not blocking and self._raw.locked():
            self._adapter.abandon_acquire(self.node)
            return False
        try:
            # An unlocked asyncio.Lock acquires without suspending, so
            # the non-blocking path above cannot race within one task.
            got_it = await self._raw.acquire()
        except asyncio.CancelledError:
            # Cancelled during the physical await: the engine request
            # must not outlive the acquisition attempt.
            self._adapter.abandon_acquire(self.node)
            raise
        if got_it:
            self._adapter.after_acquire(self.node)
            self._lost_restore.clear(id(asyncio.current_task()))
        else:  # pragma: no cover - asyncio.Lock.acquire only returns True
            self._adapter.abandon_acquire(self.node)
        return got_it

    def release(self) -> None:
        if self._enabled:
            self._adapter.before_release(self.node)
        self._raw.release()

    def locked(self) -> bool:
        return self._raw.locked()

    # -- protocol used by AioDimmunixCondition -----------------------------

    def _is_owned(self) -> bool:
        # asyncio.Lock does not track its owning task; mirror the stdlib
        # asyncio.Condition heuristic: held at all counts as owned.
        return self._raw.locked()

    def _release_save(self) -> None:
        self.release()

    async def _acquire_restore(self, state) -> None:
        # Reacquisition goes through the full Dimmunix path — the paper's
        # waitMonitor change (§3.2) on the cooperative schedule. A
        # detection here (RAISE raising, or a BREAK denial — the only
        # way a blocking acquire returns False) means the monitor stays
        # unheld: mark the task so its ``async with`` exit skips the
        # release instead of masking the error.
        key = id(asyncio.current_task())
        try:
            got_it = await self.acquire()
        except DeadlockDetectedError:
            self._lost_restore.mark(key)
            raise
        if not got_it:
            self._lost_restore.deny(key)

    # -- context manager ---------------------------------------------------

    async def __aenter__(self) -> "AioDimmunixLock":
        await self.acquire()
        return self

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        if self._lost_restore.lost(id(asyncio.current_task())):
            # This task's wait() lost the monitor to an unwound
            # reacquisition; there is nothing to release.
            return
        self.release()

    def __repr__(self) -> str:
        state = "locked" if self.locked() else "unlocked"
        return f"<AioDimmunixLock {self.name} {state}>"


class AioDimmunixRLock:
    """A task-reentrant asyncio lock with deadlock immunity.

    Only the first (non-recursive) acquisition and the final release go
    through Dimmunix; recursive pairs by the owning task are plain
    counter updates, as in a reentrant Java monitor.
    """

    _reentrant = True

    def __init__(
        self, runtime: "AsyncioDimmunixRuntime", name: str = ""
    ) -> None:
        self._runtime = runtime
        self._adapter = runtime.adapter
        self._raw = _originals.Lock()
        self._enabled = runtime.config.enabled
        self._depth = runtime.config.stack_depth
        self._telemetry = self._adapter.core.telemetry if self._enabled else None
        self._owner: Optional[int] = None
        self._count = 0
        self.node = self._adapter.new_lock_node(name) if self._enabled else None
        self.name = name or (self.node.name if self.node else "aio-rlock")
        # See AioDimmunixLock: tasks whose reacquisition was unwound.
        self._lost_restore = LostRestoreMarker()

    @staticmethod
    def _me() -> int:
        task = asyncio.current_task()
        if task is None:
            raise RuntimeError(
                "AioDimmunixRLock must be used from inside an asyncio task"
            )
        return id(task)

    async def acquire(
        self,
        blocking: bool = True,
        site_id: Optional[int] = None,
        stack: Optional["CallStack"] = None,
    ) -> bool:
        me = self._me()
        if self._owner == me:
            self._count += 1
            return True
        if self._enabled:
            if stack is None:
                tel = self._telemetry
                if tel is not None:
                    capture_t0 = time.monotonic_ns()
                    stack = resolve_stack(
                        self._depth,
                        site_id,
                        self._runtime.static_sites,
                        skip=1,
                    )
                    tel.record(
                        "capture", time.monotonic_ns() - capture_t0
                    )
                else:
                    stack = resolve_stack(
                        self._depth,
                        site_id,
                        self._runtime.static_sites,
                        skip=1,
                    )
            allowed = await self._adapter.before_acquire(
                self.node, stack, wait=blocking
            )
            if not allowed:
                return False
        if not blocking and self._raw.locked():
            if self._enabled:
                self._adapter.abandon_acquire(self.node)
            return False
        try:
            got_it = await self._raw.acquire()
        except asyncio.CancelledError:
            if self._enabled:
                self._adapter.abandon_acquire(self.node)
            raise
        if got_it:
            self._owner = me
            self._count = 1
            if self._enabled:
                self._adapter.after_acquire(self.node)
            self._lost_restore.clear(me)
        elif self._enabled:  # pragma: no cover - acquire only returns True
            self._adapter.abandon_acquire(self.node)
        return got_it

    def release(self) -> None:
        if self._owner != self._me():
            raise RuntimeError("cannot release un-acquired lock")
        self._count -= 1
        if self._count:
            return
        self._owner = None
        if self._enabled:
            self._adapter.before_release(self.node)
        self._raw.release()

    def locked(self) -> bool:
        return self._raw.locked()

    # -- protocol used by AioDimmunixCondition -----------------------------

    def _is_owned(self) -> bool:
        return self._owner == self._me()

    def _release_save(self) -> int:
        """Fully release regardless of recursion depth; return the depth."""
        if self._owner != self._me():
            raise RuntimeError("cannot wait on un-acquired lock")
        count = self._count
        self._count = 0
        self._owner = None
        if self._enabled:
            self._adapter.before_release(self.node)
        self._raw.release()
        return count

    async def _acquire_restore(self, state: int) -> None:
        """Reacquire through the full Dimmunix path, then restore depth.

        A detection here (RAISE raising, or a BREAK denial — the only
        way a blocking acquire returns False) leaves the monitor
        unheld: the task is marked so its ``async with`` exit skips the
        release, and the depth is NOT restored — doing so without
        ownership would corrupt the monitor.
        """
        key = id(asyncio.current_task())
        try:
            got_it = await self.acquire()
        except DeadlockDetectedError:
            self._lost_restore.mark(key)
            raise
        if not got_it:
            self._lost_restore.deny(key)
        self._count = state

    async def __aenter__(self) -> "AioDimmunixRLock":
        await self.acquire()
        return self

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        if self._lost_restore.lost(id(asyncio.current_task())):
            return
        self.release()

    def __repr__(self) -> str:
        return (
            f"<AioDimmunixRLock {self.name} owner={self._owner} "
            f"count={self._count}>"
        )
