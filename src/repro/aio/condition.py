"""Condition variables for tasks, with immunized monitor reacquisition.

§3.2 of the paper shows the deadlock pattern invisible to bytecode
instrumentation: ``x.wait()`` releases monitor ``x`` and *reacquires it
inside the native wait routine*. The asyncio analog is identical —
``asyncio.Condition.wait`` releases the lock and reacquires it after the
waiter future completes — so the reacquisition must go through Dimmunix
or wait()-induced lock inversions between tasks are invisible.

:class:`AioDimmunixCondition` follows the stdlib ``asyncio.Condition``
waiter-future design, but releases and reacquires its monitor through the
immunized aio lock wrappers, so the reacquisition at the end of
:meth:`wait` runs detection and avoidance like any other acquisition.

Unlike the stdlib class it accepts an optional ``timeout`` on
:meth:`wait` (threading-style). A non-positive timeout degenerates to a
single non-blocking poll of the notification — the clamp CPython's
``threading.Condition`` applies — rather than an unbounded wait.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import deque
from typing import TYPE_CHECKING, Callable, Optional, Union

from repro.aio.locks import AioDimmunixLock, AioDimmunixRLock

_monitor_ids = itertools.count(1)

if TYPE_CHECKING:
    from repro.aio.runtime import AsyncioDimmunixRuntime

AioMonitorLock = Union[AioDimmunixLock, AioDimmunixRLock]


class AioDimmunixCondition:
    """Drop-in ``asyncio.Condition`` with immunized reacquisition."""

    def __init__(
        self,
        lock: Optional[AioMonitorLock] = None,
        runtime: Optional["AsyncioDimmunixRuntime"] = None,
    ) -> None:
        if lock is None:
            if runtime is None:
                raise ValueError(
                    "AioDimmunixCondition needs a lock or a runtime to "
                    "make one"
                )
            # One name per monitor: distinct conditions must stay
            # distinct lock nodes in the event stream, or downstream
            # consumers (the trace miner above all) alias every
            # condition in the process into one lock.
            lock = runtime.rlock(
                name=f"aio-condition-monitor-{next(_monitor_ids)}"
            )
        elif not hasattr(lock, "_acquire_restore"):
            # Fail at construction, not with an AttributeError deep in
            # wait(): a raw asyncio.Lock (e.g. created before the patch
            # was installed) cannot serve as an immunized monitor.
            raise TypeError(
                "AioDimmunixCondition needs an immunized monitor "
                "(AioDimmunixLock/AioDimmunixRLock or compatible), got "
                f"{type(lock).__name__}"
            )
        self._lock = lock
        self._waiters: deque[asyncio.Future] = deque()

    @property
    def lock(self) -> AioMonitorLock:
        return self._lock

    # -- monitor protocol ---------------------------------------------------

    async def acquire(self, *args, **kwargs):
        return await self._lock.acquire(*args, **kwargs)

    def release(self) -> None:
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    async def __aenter__(self) -> "AioDimmunixCondition":
        await self._lock.__aenter__()
        return self

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        # Lost-monitor handling (a wait()-reacquisition unwound by a
        # detection) lives on the lock's __aexit__, covering this
        # spelling and ``async with x:`` around ``Condition(x)`` alike.
        await self._lock.__aexit__(exc_type, exc_value, traceback)

    def _is_owned(self) -> bool:
        return self._lock._is_owned()

    # -- waiting --------------------------------------------------------------

    async def wait(self, timeout: Optional[float] = None) -> bool:
        """Release the monitor, park, then reacquire through Dimmunix.

        Returns ``False`` on timeout, like ``threading.Condition.wait``;
        a ``timeout <= 0`` polls once without suspending.
        """
        if not self._is_owned():
            raise RuntimeError("cannot wait on un-acquired lock")
        waiter = asyncio.get_running_loop().create_future()
        self._waiters.append(waiter)
        saved_state = self._lock._release_save()
        got_it = False
        cancelled = None
        try:
            try:
                if timeout is None:
                    # shield(): cancelling this task must not cancel the
                    # waiter future a notify may already have consumed.
                    await asyncio.shield(waiter)
                    got_it = True
                elif timeout > 0:
                    try:
                        await asyncio.wait_for(
                            asyncio.shield(waiter), timeout
                        )
                        got_it = True
                    except asyncio.TimeoutError:
                        # A notify may have landed in the same tick the
                        # timeout fired; it was consumed (the waiter was
                        # popped), so honor it.
                        got_it = waiter.done() and not waiter.cancelled()
                else:
                    # Expired deadline: never suspend. Unlike the
                    # threaded twin there is no pending notify to
                    # consume — no suspension point separates appending
                    # the waiter from this check, so the future cannot
                    # be completed yet.
                    got_it = False
            except asyncio.CancelledError as error:
                cancelled = error
                if waiter.done() and not waiter.cancelled():
                    # This waiter consumed a notify it will never act
                    # on (cancelled in the same tick it was notified):
                    # pass the wakeup to the next live waiter or it is
                    # lost forever — the fix CPython 3.13 applied to
                    # asyncio.Condition. Pop the beneficiary like
                    # notify() would.
                    for other in list(self._waiters):
                        if not other.done():
                            self._waiters.remove(other)
                            other.set_result(None)
                            break
        finally:
            # Drop the stale waiter *before* the reacquire suspension
            # point: if the reacquisition raises (a detection under
            # RAISE, say), a leaked not-done waiter would silently
            # swallow a later notify() meant for a live waiter.
            if not got_it:
                try:
                    self._waiters.remove(waiter)
                except ValueError:
                    pass
            # The reacquisition — where wait()-induced inversions deadlock
            # and where Android Dimmunix hooks waitMonitor. Mirror the
            # stdlib: reacquire even when cancelled, then re-raise. A
            # detection here (RAISE, or a BREAK denial) propagates with
            # the monitor unheld — the lock marks the task so the
            # enclosing ``async with`` exit skips its release.
            while True:
                try:
                    await self._lock._acquire_restore(saved_state)
                    break
                except asyncio.CancelledError as error:
                    cancelled = error
        if cancelled is not None:
            raise cancelled
        return got_it

    async def wait_for(
        self,
        predicate: Callable[[], bool],
        timeout: Optional[float] = None,
    ) -> bool:
        """Wait until ``predicate()`` is true (or until the timeout)."""
        end_time: Optional[float] = None
        result = predicate()
        while not result:
            wait_time = None
            if timeout is not None:
                if end_time is None:
                    end_time = time.monotonic() + timeout
                # Clamp: a deadline already behind us still performs the
                # final non-suspending poll instead of waiting forever.
                wait_time = max(end_time - time.monotonic(), 0.0)
            got_it = await self.wait(wait_time)
            result = predicate()
            if wait_time is not None and wait_time <= 0 and not got_it:
                break
        return result

    # -- signalling -------------------------------------------------------------

    def notify(self, n: int = 1) -> None:
        if not self._is_owned():
            raise RuntimeError("cannot notify on un-acquired lock")
        woken = 0
        while woken < n and self._waiters:
            waiter = self._waiters.popleft()
            if waiter.done():
                continue
            waiter.set_result(None)
            woken += 1

    def notify_all(self) -> None:
        self.notify(len(self._waiters))

    notifyAll = notify_all

    def __repr__(self) -> str:
        return (
            f"<AioDimmunixCondition on {self._lock!r}, "
            f"{len(self._waiters)} waiters>"
        )
