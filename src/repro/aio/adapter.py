"""The asyncio adapter: cooperative glue between coroutine tasks and the core.

The paper's platform-wide claim is that *one* Dimmunix instance covers
every synchronization layer a process uses. For a Python process the
layer the threading adapters cannot see is ``asyncio``: tasks deadlock on
``asyncio.Lock``/``Condition`` cycles exactly like threads deadlock on
mutexes, and the RAG model transfers unchanged — an execution unit is a
task instead of an OS thread, a lock is an asyncio lock instead of a
mutex, and "blocked" means suspended at an ``await`` instead of parked in
the kernel.

:class:`AioRuntimeAdapter` is the analog of
:class:`repro.runtime.interception.RuntimeAdapter` for one event loop:

* **Task identity.** Each :class:`asyncio.Task` registers as a
  :class:`~repro.core.node.ThreadNode` on first acquisition;
  ``Task.add_done_callback`` drives :meth:`DimmunixCore.thread_exit`, so
  a dying task releases its RAG bookkeeping even when it crashed while
  holding locks.
* **Cooperative yields.** Where the thread adapter parks an OS thread on
  a per-signature condition variable, this adapter parks the *task* on a
  per-signature :class:`asyncio.Future` and returns control to the event
  loop — avoidance never blocks the loop's thread. A woken task re-runs
  ``request`` exactly like the paper's retry loop.
* **Cancellation safety.** A cancelled ``await`` routes through
  :meth:`DimmunixCore.abandon_yield` / :meth:`DimmunixCore.cancel_request`
  before the ``CancelledError`` propagates, so cancellation never leaks a
  request or yield edge into the RAG.
* **Cross-domain immunity.** Engine calls are serialized under a global
  lock that may be *shared* with a thread adapter driving the same
  :class:`~repro.core.engine.DimmunixCore`. Tasks and real threads then
  form one RAG: a worker thread holding a lock a task awaits (or vice
  versa) is a detectable, avoidable cycle — something no per-domain
  detector sees. Wakes fan out through the engine's waker hooks, so a
  release performed by an OS thread resumes parked tasks via
  ``loop.call_soon_threadsafe`` and a release performed by a task
  notifies parked threads.
"""

from __future__ import annotations

import asyncio
import time
import weakref
from asyncio.events import get_running_loop as _get_running_loop
from asyncio.tasks import _current_tasks
from typing import Callable, Optional

from repro.config import DimmunixConfig
from repro.core.callstack import CallStack
from repro.core.engine import DimmunixCore, RequestVerdict
from repro.core.node import LockNode, ThreadNode
from repro.core.signature import DeadlockSignature
from repro.runtime import _originals
from repro.runtime.interception import apply_detection_policy


class AioRuntimeAdapter:
    """Drives a :class:`DimmunixCore` for the tasks of one event loop."""

    def __init__(self, core: DimmunixCore, glock=None) -> None:
        self.core = core
        self.config: DimmunixConfig = core.config
        # Engine calls are quick and non-blocking, so taking a real
        # (threading) lock from a coroutine is safe; sharing it with a
        # thread adapter is what makes the engine cross-domain.
        self._glock = glock if glock is not None else _originals.Lock()
        self._parked: dict[DeadlockSignature, asyncio.Future] = {}
        self._task_nodes: dict[int, ThreadNode] = {}
        self._detections: list[DeadlockSignature] = []
        self.on_detection: Optional[Callable[[DeadlockSignature], None]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._waker = core.add_waker(self._wake_signature_locked)
        # Let a liveness watchdog serialize its scans (and mitigation)
        # under the same lock as every engine call (the shared lock in
        # cross-domain mode). Init-time only — nothing watchdog-related
        # ever runs on the lock path.
        if core.watchdog is not None:
            core.watchdog.bind_glock(self._glock)

    # ------------------------------------------------------------------
    # node bookkeeping
    # ------------------------------------------------------------------

    def current_task_node(self) -> ThreadNode:
        """The RAG node of the calling task (registered on first use).

        Must be called from inside a task running on this adapter's
        event loop; the loop is bound on first use and re-bound (with a
        full node reset) when a fresh loop appears — each ``asyncio.run``
        creates a new loop, and futures parked on a dead loop can never
        complete.
        """
        task = asyncio.current_task()
        if task is None:
            raise RuntimeError(
                "Dimmunix asyncio primitives must be used from inside an "
                "asyncio task"
            )
        self._bind_loop()
        key = id(task)
        node = self._task_nodes.get(key)
        if node is None:
            name = task.get_name()
            with self._glock:
                node = self._task_nodes.get(key)
                if node is None:
                    node = self.core.register_thread(name)
                    self._task_nodes[key] = node
                    self.core.stats.tasks_registered += 1
            # Outside the engine lock: the callback registry is loop-local.
            task.add_done_callback(self._task_done)
            # Safety net for tasks destroyed while pending (the
            # "Task was destroyed but it is pending!" case): their done
            # callback never fires, so the finalizer reaps the node at
            # GC time — before CPython can recycle id(task) for a new
            # task, which would otherwise inherit the dead node's holds.
            weakref.finalize(task, self._task_reaped, key)
        return node

    def _bind_loop(self) -> None:
        loop = asyncio.get_running_loop()
        if self._loop is loop:
            return
        with self._glock:
            if self._loop is loop:
                return
            previous = self._loop
            if (
                previous is not None
                and not previous.is_closed()
                and previous.is_running()
            ):
                # Two live loops, one adapter: rebinding would wipe the
                # other loop's parked futures and force-exit its live
                # task nodes — silent corruption. Refuse loudly; the
                # supported shape is one AsyncioDimmunixRuntime per loop
                # (they can still share one engine via ``attached``).
                raise RuntimeError(
                    "this Dimmunix aio adapter is already bound to "
                    "another running event loop; create one "
                    "AsyncioDimmunixRuntime per event loop"
                )
            # A fresh loop after the previous one finished (sequential
            # ``asyncio.run`` calls): drop parked futures (they belong
            # to the dead loop) and clean up nodes of tasks that never
            # completed before their loop went away.
            self._parked.clear()
            for node in self._task_nodes.values():
                self.core.thread_exit(node)
            self._task_nodes.clear()
            self._loop = loop

    def _task_done(self, task: "asyncio.Task") -> None:
        """``add_done_callback`` hook: the task's ``thread_exit``."""
        self._task_reaped(id(task))

    def _task_reaped(self, key: int) -> None:
        """Retire a task's node (done callback, or finalizer on GC)."""
        with self._glock:
            node = self._task_nodes.pop(key, None)
            if node is not None:
                self.core.thread_exit(node)

    def new_lock_node(self, name: str = "") -> LockNode:
        with self._glock:
            return self.core.register_lock(name)

    def resolve_position(self, stack: CallStack):
        """Intern ``stack`` under the global lock (PositionCache misses).

        Same contract as the thread adapter's ``resolve_position``: the
        interning table is engine state and must only mutate under the
        (possibly shared) glock.
        """
        with self._glock:
            return self.core.positions.intern(stack)

    # ------------------------------------------------------------------
    # the monitorenter / monitorexit path
    # ------------------------------------------------------------------

    async def before_acquire(
        self, lock_node: LockNode, stack: CallStack, wait: bool = True
    ) -> bool:
        """Run detection + avoidance before physically acquiring.

        The cooperative counterpart of the thread adapter's do/while
        retry loop: instead of blocking in ``Condition.wait`` the task
        awaits a per-signature future and re-requests when woken.
        Returns ``True`` when the caller may proceed, ``False`` when the
        ``BREAK`` policy denied the acquisition or a non-blocking caller
        would have had to park.
        """
        task_node = self.current_task_node()
        config = self.config
        tel = self.core.telemetry
        timeout = config.yield_timeout
        poll = config.aio_yield_poll
        parked_for = 0.0
        while True:
            glock_t0 = time.monotonic_ns() if tel is not None else 0
            with self._glock:
                if tel is not None:
                    tel.record(
                        "glock_wait", time.monotonic_ns() - glock_t0
                    )
                result = self.core.request(task_node, lock_node, stack)
                if result.resume:
                    self.core.wake_yielders(result.resume)
                if result.detected is not None:
                    return apply_detection_policy(
                        self.core,
                        config,
                        self._detections,
                        self.on_detection,
                        task_node,
                        lock_node,
                        result.detected,
                    )
                if result.verdict is RequestVerdict.YIELD:
                    assert result.yield_on is not None
                    if not wait:
                        # try-lock semantics: report "would block".
                        self.core.abandon_yield(task_node)
                        return False
                    future = self._future_for_locked(result.yield_on)
                else:
                    return True

            # Cooperative park, outside the engine lock: the loop keeps
            # running other tasks while this one waits for a wake.
            step = None if timeout is None else max(timeout - parked_for, 0.0)
            if poll is not None:
                step = poll if step is None else min(step, poll)
            started = time.monotonic()
            park_t0 = time.monotonic_ns() if tel is not None else 0
            try:
                if step is None:
                    # shield(): cancelling this task must not cancel the
                    # future other parked tasks share.
                    await asyncio.shield(future)
                else:
                    await asyncio.wait_for(asyncio.shield(future), step)
                parked_for = 0.0  # a genuine wake resets the safety net
            except asyncio.TimeoutError:
                parked_for += time.monotonic() - started
                if timeout is not None and parked_for >= timeout - 1e-9:
                    # Safety net: treat the timeout as starvation, grant a
                    # one-shot bypass, retry.
                    with self._glock:
                        if task_node.yielding_on is not None:
                            self.core.force_bypass(task_node)
                    parked_for = 0.0
                # else: an aio_yield_poll tick — re-request without a
                # bypass so avoidance gets a fresh look at the queues.
            except asyncio.CancelledError:
                # Cancellation while parked: the request edge was already
                # cleared when the engine parked us; drop the yield edge
                # so nothing leaks into the RAG, then let it propagate.
                with self._glock:
                    self.core.abandon_yield(task_node)
                raise
            finally:
                if tel is not None:
                    tel.record(
                        "yield_park", time.monotonic_ns() - park_t0
                    )

    def fast_acquired(self, lock_node: LockNode, position) -> bool:
        """Book an uncontended acquisition on a history-cold position.

        The cooperative fast path: the caller verified the raw asyncio
        lock is free with no waiters (so the physical acquire completes
        synchronously) and calls this *before* awaiting it — no task
        switch can interleave, because this method never awaits. Same
        demotion contract as the thread adapter's ``fast_acquired``.
        """
        # Inlined node probe: a hit is sound without re-checking the
        # loop binding — the entry's task object is still alive (its
        # finalizer pops the entry before CPython can recycle the id),
        # and a live task belongs to exactly one loop. The full
        # registration path (which also binds the loop) runs only on a
        # task's first acquisition. asyncio.current_task() is expanded
        # to its own two-step body (this build has no C accelerator for
        # it) because the wrapper call alone is ~10% of the time budget.
        task = _current_tasks.get(_get_running_loop())
        task_node = (
            self._task_nodes.get(id(task)) if task is not None else None
        )
        if task_node is None:
            task_node = self.current_task_node()
        core = self.core
        tel = core.telemetry
        glock = self._glock
        if tel is not None:
            glock_t0 = time.monotonic_ns()
            glock.acquire()
            try:
                tel.record("glock_wait", time.monotonic_ns() - glock_t0)
                return core.fast_acquired(task_node, lock_node, position)
            finally:
                glock.release()
        glock.acquire()
        try:
            return core.fast_acquired(task_node, lock_node, position)
        finally:
            glock.release()

    def after_acquire(self, lock_node: LockNode) -> None:
        task_node = self.current_task_node()
        with self._glock:
            self.core.acquired(task_node, lock_node)

    def before_release(self, lock_node: LockNode) -> None:
        # Attribute the release to the RAG's recorded holder, not the
        # caller: releasing from a different task than acquired is a
        # legal asyncio.Lock handoff pattern, and charging the wrong
        # node would leave a stale hold edge behind forever.
        # Same inlined current-task + node probe as ``fast_acquired``.
        task = _current_tasks.get(_get_running_loop())
        caller_node = (
            self._task_nodes.get(id(task)) if task is not None else None
        )
        if caller_node is None:
            caller_node = self.current_task_node()
        with self._glock:
            holder = lock_node.owner
            result = self.core.release(
                holder if holder is not None else caller_node, lock_node
            )
            if result.notify:
                self.core.notify_signatures(result.notify)

    def abandon_acquire(self, lock_node: LockNode) -> None:
        """Roll back a granted request whose physical acquire failed.

        This is the cancellation path of the physical ``await``: a task
        cancelled between the engine grant and the raw acquisition must
        cancel the pending engine request or it would pin a request edge
        (and its position-queue entry) forever.
        """
        task_node = self.current_task_node()
        with self._glock:
            self.core.cancel_request(task_node, lock_node)

    # ------------------------------------------------------------------
    # parked-task management
    # ------------------------------------------------------------------

    def _future_for_locked(
        self, signature: DeadlockSignature
    ) -> asyncio.Future:
        """The shared park future for ``signature`` (under the glock)."""
        future = self._parked.get(signature)
        if future is None or future.done():
            assert self._loop is not None
            future = self._loop.create_future()
            self._parked[signature] = future
        return future

    def _wake_signature_locked(self, signature: DeadlockSignature) -> None:
        """This adapter's engine waker.

        Runs under the global lock on whatever thread performed the
        release — possibly an OS thread of a sharing runtime — so the
        future completes via ``call_soon_threadsafe``.
        """
        future = self._parked.pop(signature, None)
        if future is None or future.done():
            return
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(_complete_future, future)
        except RuntimeError:
            # The loop closed between the check and the call.
            pass

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def detections(self) -> tuple[DeadlockSignature, ...]:
        return tuple(self._detections)

    @property
    def registered_tasks(self) -> int:
        """Live tasks currently known to this adapter."""
        return len(self._task_nodes)

    async def wait_for_detection(self, timeout: float = 5.0) -> bool:
        """Await until some task records a detection (tests, demos)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._detections:
                return True
            await asyncio.sleep(0.001)
        return bool(self._detections)


def _complete_future(future: asyncio.Future) -> None:
    if not future.done():
        future.set_result(None)
