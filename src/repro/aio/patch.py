"""Opt-in platform-wide deadlock immunity for ``asyncio``.

The asyncio counterpart of :mod:`repro.runtime.patch`: :func:`install`
replaces ``asyncio.Lock`` and ``asyncio.Condition`` (both the top-level
names and ``asyncio.locks``) with Dimmunix-backed factories bound to an
:class:`~repro.aio.runtime.AsyncioDimmunixRuntime`, so every library
using asyncio's synchronization primitives acquires immunized locks
without being modified.

Unlike the threading patch this one is *opt-in by design*:
``repro.immunity(patch=True)`` does not install it. Two reasons, both
from the paper's §4 double-interception discussion: much asyncio-using
code creates primitives at import time (before any runtime exists), and
frameworks sometimes rely on ``asyncio.Lock`` internals
(``_waiters``) that a wrapper cannot expose. Call
:func:`install` / use :func:`immunized` explicitly when the workload is
known to be compatible.

Dimmunix's own internals allocate through :mod:`repro.aio._originals`,
so the patch never recurses into itself.
"""

from __future__ import annotations

import asyncio
import asyncio.locks
import contextlib
from typing import Iterator, Optional

from repro.aio.condition import AioDimmunixCondition
from repro.aio.locks import AioDimmunixLock, AioDimmunixRLock
from repro.aio.runtime import AsyncioDimmunixRuntime, get_aio_runtime

_installed_runtime: Optional[AsyncioDimmunixRuntime] = None
_originals_saved: Optional[tuple] = None


class PatchedLock(AioDimmunixLock):
    """The class installed as ``asyncio.Lock``.

    A real class (not a factory function, unlike the threading patch —
    the stdlib ``threading.Lock`` *is* a factory, ``asyncio.Lock`` is a
    type): ``isinstance(x, asyncio.Lock)`` keeps working and user
    subclasses of ``asyncio.Lock`` defined while the patch is active
    still construct. Binds to the runtime active at construction time,
    so re-installing with a different runtime affects new locks only.
    """

    def __init__(self) -> None:
        super().__init__(_installed_runtime or get_aio_runtime())


class PatchedCondition(AioDimmunixCondition):
    """The class installed as ``asyncio.Condition`` (see PatchedLock)."""

    def __init__(self, lock=None) -> None:
        super().__init__(lock, runtime=_installed_runtime or get_aio_runtime())


def install(
    runtime: Optional[AsyncioDimmunixRuntime] = None,
) -> AsyncioDimmunixRuntime:
    """Patch ``asyncio`` so the whole process's tasks run with immunity.

    Idempotent: re-installing with the same runtime is a no-op;
    re-installing with a different runtime rebinds the patched classes.
    Returns the runtime the patch is now bound to.
    """
    global _installed_runtime, _originals_saved
    runtime = runtime or get_aio_runtime()
    if _originals_saved is None:
        _originals_saved = (
            asyncio.Lock,
            asyncio.Condition,
            asyncio.locks.Lock,
            asyncio.locks.Condition,
        )
    asyncio.Lock = PatchedLock
    asyncio.Condition = PatchedCondition
    asyncio.locks.Lock = PatchedLock
    asyncio.locks.Condition = PatchedCondition
    _installed_runtime = runtime
    return runtime


def uninstall() -> None:
    """Restore the original ``asyncio`` primitives."""
    global _installed_runtime, _originals_saved
    if _originals_saved is None:
        return
    (
        asyncio.Lock,
        asyncio.Condition,
        asyncio.locks.Lock,
        asyncio.locks.Condition,
    ) = _originals_saved
    _originals_saved = None
    _installed_runtime = None


def is_installed() -> bool:
    return _installed_runtime is not None


def installed_runtime() -> Optional[AsyncioDimmunixRuntime]:
    return _installed_runtime


@contextlib.contextmanager
def immunized(
    runtime: Optional[AsyncioDimmunixRuntime] = None,
) -> Iterator[AsyncioDimmunixRuntime]:
    """Scope-limited asyncio immunity (mainly for tests and demos)."""
    was_installed = is_installed()
    previous = installed_runtime()
    active = install(runtime)
    try:
        yield active
    finally:
        if was_installed and previous is not None:
            install(previous)
        else:
            uninstall()


__all__ = [
    "PatchedLock",
    "PatchedCondition",
    "install",
    "uninstall",
    "is_installed",
    "installed_runtime",
    "immunized",
    "AioDimmunixLock",
    "AioDimmunixRLock",
    "AioDimmunixCondition",
]
