"""Original asyncio primitives, captured before any monkey-patching.

The opt-in asyncio patch (:mod:`repro.aio.patch`) replaces
``asyncio.Lock`` and ``asyncio.Condition`` for the whole process — and
the immunized wrappers themselves are built on top of a raw asyncio lock.
If the wrappers allocated through the (possibly patched) public names,
installing the patch would recurse. Everything internal to the aio layer
therefore allocates through this module, which snapshots the genuine
classes at import time (``patch`` imports this module first, so the
snapshot always precedes any installation). Mirrors
:mod:`repro.runtime._originals` for the threading layer.
"""

from __future__ import annotations

import asyncio

Lock = asyncio.Lock
Condition = asyncio.Condition
