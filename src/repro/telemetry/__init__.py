"""Opt-in observability for a Dimmunix instance.

The engine's event stream says *what* happened; this package says *how
long it took*. Three surfaces, all riding the existing spine:

* :mod:`repro.telemetry.histogram` / :mod:`repro.telemetry.collector` —
  log2-bucketed nanosecond histograms filled by per-thread accumulators.
  The engine owns one :class:`~repro.telemetry.collector.TelemetryCollector`
  when ``DimmunixConfig.telemetry`` is on and records the per-phase marks
  (``capture``, ``glock_wait``, ``match``, ``acquire``, ``yield_park``,
  ``store_flush``, ``sync``) along the request path. With telemetry off
  the collector is ``None`` and every instrumented site pays exactly one
  attribute check (held by the E1 overhead gate).
* :mod:`repro.telemetry.trace` — compiles a recorded event stream
  (``Dimmunix.record``) into Chrome trace-event JSON, loadable in
  Perfetto / ``chrome://tracing`` (``dimmunix-events trace``).
* :mod:`repro.telemetry.prometheus` / :mod:`repro.telemetry.ragdump` —
  the metrics surface: Prometheus text exposition of the phase
  histograms and stats counters (``dimmunix-report metrics``, the fleet
  ``metrics`` op) and an on-demand RAG introspection dump with
  per-waiter request ages (JSON + DOT).
"""

from repro.telemetry.collector import PHASES, TelemetryCollector
from repro.telemetry.histogram import LogHistogram
from repro.telemetry.prometheus import render_report
from repro.telemetry.ragdump import rag_snapshot, render_dot
from repro.telemetry.trace import compile_trace

__all__ = [
    "PHASES",
    "TelemetryCollector",
    "LogHistogram",
    "render_report",
    "rag_snapshot",
    "render_dot",
    "compile_trace",
]
