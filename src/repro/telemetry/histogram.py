"""Log2-bucketed latency histograms.

The recording path must cost a handful of integer operations — it runs
inside the engine's global lock, per ``monitorenter`` — so the bucket
index is just ``ns.bit_length()``: bucket 0 holds exactly 0 ns, bucket
``b`` holds ``[2**(b-1), 2**b - 1]``. Sixty-four buckets cover everything
a 64-bit monotonic clock can express; larger values (and negative ones,
which a well-behaved monotonic clock never produces) clamp into the
edge buckets rather than raising on the lock path.

Histograms merge losslessly (per-thread accumulators, fleet
aggregation) and round-trip through a plain-JSON form (the fleet
``metrics`` op and ``Dimmunix.telemetry_report`` wire shape).
"""

from __future__ import annotations

BUCKETS = 64

#: inclusive upper bound of bucket ``b`` (integer ns), exact because
#: bucket b holds [2**(b-1), 2**b - 1]; the last bucket also absorbs
#: everything the clamp folded down.
BUCKET_UPPER_BOUNDS = tuple(
    0 if b == 0 else (1 << b) - 1 for b in range(BUCKETS)
)


class LogHistogram:
    """A fixed-size power-of-two histogram of nanosecond durations."""

    __slots__ = ("counts", "count", "sum_ns", "min_ns", "max_ns")

    def __init__(self) -> None:
        self.counts = [0] * BUCKETS
        self.count = 0
        self.sum_ns = 0
        self.min_ns = 0
        self.max_ns = 0

    # ------------------------------------------------------------------
    # recording (the hot path)
    # ------------------------------------------------------------------

    def record(self, ns: int) -> None:
        """Land one duration. Negative values clamp to 0, values beyond
        the last bucket clamp into it — never raise here."""
        if ns < 0:
            ns = 0
        index = ns.bit_length()
        if index >= BUCKETS:
            index = BUCKETS - 1
        self.counts[index] += 1
        if self.count:
            if ns < self.min_ns:
                self.min_ns = ns
            elif ns > self.max_ns:
                self.max_ns = ns
        else:
            self.min_ns = ns
            self.max_ns = ns
        self.count += 1
        self.sum_ns += ns

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other`` into this histogram (returns self)."""
        if other.count:
            mine = self.counts
            for index, value in enumerate(other.counts):
                if value:
                    mine[index] += value
            if self.count:
                self.min_ns = min(self.min_ns, other.min_ns)
                self.max_ns = max(self.max_ns, other.max_ns)
            else:
                self.min_ns = other.min_ns
                self.max_ns = other.max_ns
            self.count += other.count
            self.sum_ns += other.sum_ns
        return self

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    @property
    def mean_ns(self) -> float:
        return self.sum_ns / self.count if self.count else 0.0

    def percentile(self, q: float) -> int:
        """Estimate the ``q``-quantile (0 < q <= 1) in nanoseconds.

        Linear interpolation inside the bucket where the cumulative
        count crosses ``q * count``; exact for bucket 0, bounded by the
        bucket width (a factor of two) elsewhere.
        """
        if not self.count:
            return 0
        if q <= 0:
            return self.min_ns
        target = q * self.count
        cumulative = 0
        for index, value in enumerate(self.counts):
            if not value:
                continue
            if cumulative + value >= target:
                low = 0 if index == 0 else 1 << (index - 1)
                high = BUCKET_UPPER_BOUNDS[index]
                fraction = (target - cumulative) / value
                estimate = int(low + (high - low) * fraction)
                return max(self.min_ns, min(estimate, self.max_ns))
            cumulative += value
        return self.max_ns

    def nonzero_buckets(self) -> list[tuple[int, int]]:
        """``(upper_bound_ns, count)`` per occupied bucket, ascending."""
        return [
            (BUCKET_UPPER_BOUNDS[index], value)
            for index, value in enumerate(self.counts)
            if value
        ]

    # ------------------------------------------------------------------
    # wire form
    # ------------------------------------------------------------------

    def to_json(self) -> dict:
        """Sparse, plain-JSON form (bucket index -> count)."""
        return {
            "buckets": {
                str(index): value
                for index, value in enumerate(self.counts)
                if value
            },
            "count": self.count,
            "sum_ns": self.sum_ns,
            "min_ns": self.min_ns,
            "max_ns": self.max_ns,
        }

    @classmethod
    def from_json(cls, data: dict) -> "LogHistogram":
        histogram = cls()
        buckets = data.get("buckets") or {}
        total = 0
        for key, value in buckets.items():
            index = int(key)
            if not 0 <= index < BUCKETS:
                raise ValueError(f"bucket index {index} out of range")
            value = int(value)
            if value < 0:
                raise ValueError(f"negative bucket count {value}")
            histogram.counts[index] = value
            total += value
        histogram.count = int(data.get("count", total))
        histogram.sum_ns = int(data.get("sum_ns", 0))
        histogram.min_ns = int(data.get("min_ns", 0))
        histogram.max_ns = int(data.get("max_ns", 0))
        return histogram

    def __repr__(self) -> str:
        if not self.count:
            return "<LogHistogram empty>"
        return (
            f"<LogHistogram n={self.count} mean={self.mean_ns:,.0f}ns "
            f"p50={self.percentile(0.5):,}ns p99={self.percentile(0.99):,}ns>"
        )


__all__ = ["LogHistogram", "BUCKETS", "BUCKET_UPPER_BOUNDS"]
