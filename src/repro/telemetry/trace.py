"""Compile a recorded event stream into Chrome trace-event JSON.

``dimmunix-events trace`` feeds the JSONL a :class:`JsonlWriter`
recorded through this compiler and gets back a file loadable in
Perfetto / ``chrome://tracing``. The acquire lifecycle becomes three
span kinds on a per-thread track:

* ``request <lock>`` — RequestEvent -> AcquiredEvent (avoidance +
  physical-acquire latency), tagged with the requesting position key;
* ``parked <lock>``  — YieldEvent -> ResumeEvent (time spent yielded to
  a history signature), tagged with the signature's key;
* ``hold <lock>``    — AcquiredEvent -> ReleaseEvent (critical-section
  length), carrying the position from the matching request.

Each ``source`` (session/adapter/domain) becomes a trace *process* and
each thread/task within it a trace *thread*, so cross-domain stalls —
an OS thread holding what an asyncio task wants — line up on one
timeline. Detections and starvations appear as instant events on the
victim's track.

Durations come from the monotonic ``ts_ns`` stamps when present (any
stream recorded after the stamps landed), falling back to wall-clock
``ts`` for older recordings. Spans left unclosed at end-of-stream are
dropped and counted in the output's ``dimmunix`` block.
"""

from __future__ import annotations

from typing import Iterable

_INSTANT_KINDS = {
    "detection": "deadlock detected",
    "starvation": "starvation",
    "match-capped": "match capped",
    "livelock-suspected": "livelock suspected",
    "watchdog-mitigation": "watchdog mitigation",
}


def _position_label(position) -> str:
    if not position:
        return ""
    try:
        return ";".join(
            ":".join(str(part) for part in entry)
            if isinstance(entry, (list, tuple))
            else str(entry)
            for entry in position
        )
    except TypeError:
        return str(position)


def _signature_label(signature) -> str:
    if isinstance(signature, dict):
        key = signature.get("key") or signature.get("positions")
        if key is not None:
            return _position_label(key) if isinstance(key, list) else str(key)
    return "" if signature is None else str(signature)


class _Ids:
    """Stable small-integer ids for sources (pids) and threads (tids)."""

    def __init__(self) -> None:
        self.pids: dict[str, int] = {}
        self.tids: dict[tuple[str, str], int] = {}

    def pid(self, source: str) -> int:
        pid = self.pids.get(source)
        if pid is None:
            pid = self.pids[source] = len(self.pids) + 1
        return pid

    def tid(self, source: str, thread: str) -> int:
        key = (source, thread)
        tid = self.tids.get(key)
        if tid is None:
            tid = self.tids[key] = (
                sum(1 for s, _ in self.tids if s == source) + 1
            )
        return tid


def compile_trace(events: Iterable[dict]) -> dict:
    """Compile event dicts (``event_to_dict`` form) into a trace dict.

    Returns the Chrome trace-event JSON object format:
    ``{"traceEvents": [...], "displayTimeUnit": "ns", "dimmunix": {...}}``.
    """
    ids = _Ids()
    spans: list[dict] = []
    instants: list[dict] = []
    # Open-span state, keyed per (source, thread).
    pending_request: dict[tuple[str, str], dict] = {}
    pending_park: dict[tuple[str, str], dict] = {}
    # Holds nest (RLock re-entry), so a stack per (source, thread, lock).
    pending_hold: dict[tuple[str, str, str], list[dict]] = {}
    consumed = 0
    dropped_unclosed = 0

    def ts_us(event: dict) -> float:
        ts_ns = event.get("ts_ns") or 0
        if ts_ns:
            return ts_ns / 1000.0
        return float(event.get("ts") or 0.0) * 1e6

    def emit_span(start: dict, end: dict, name: str, args: dict) -> None:
        begin = ts_us(start)
        spans.append(
            {
                "ph": "X",
                "name": name,
                "cat": "dimmunix",
                "pid": ids.pid(start.get("source", "core")),
                "tid": ids.tid(
                    start.get("source", "core"), start.get("thread", "")
                ),
                "ts": begin,
                "dur": max(0.0, ts_us(end) - begin),
                "args": {k: v for k, v in args.items() if v},
            }
        )

    for event in events:
        kind = event.get("kind")
        source = event.get("source", "core")
        thread = event.get("thread", "")
        key = (source, thread)
        consumed += 1

        if kind == "request":
            if key in pending_request:
                dropped_unclosed += 1
            pending_request[key] = event
        elif kind == "acquired":
            lock = event.get("lock", "")
            request = pending_request.pop(key, None)
            position = ""
            if request is not None:
                position = _position_label(request.get("position"))
                emit_span(
                    request,
                    event,
                    f"request {lock}",
                    {"lock": lock, "position": position},
                )
            # The hold span opens now and carries the request's position.
            pending_hold.setdefault((source, thread, lock), []).append(
                {"event": event, "position": position}
            )
        elif kind == "release":
            lock = event.get("lock", "")
            stack = pending_hold.get((source, thread, lock))
            if stack:
                opened = stack.pop()
                emit_span(
                    opened["event"],
                    event,
                    f"hold {lock}",
                    {"lock": lock, "position": opened["position"]},
                )
        elif kind == "yield":
            if key in pending_park:
                dropped_unclosed += 1
            pending_park[key] = event
        elif kind == "resume":
            parked = pending_park.pop(key, None)
            if parked is not None:
                lock = parked.get("lock", "")
                emit_span(
                    parked,
                    event,
                    f"parked {lock}",
                    {
                        "lock": lock,
                        "signature": _signature_label(
                            parked.get("signature")
                        ),
                    },
                )
        elif kind in _INSTANT_KINDS:
            instants.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": _INSTANT_KINDS[kind],
                    "cat": "dimmunix",
                    "pid": ids.pid(source),
                    "tid": ids.tid(source, thread),
                    "ts": ts_us(event),
                    "args": {"lock": event.get("lock", "")},
                }
            )

    dropped_unclosed += (
        len(pending_request)
        + len(pending_park)
        + sum(len(stack) for stack in pending_hold.values())
    )

    trace_events = spans + instants
    # Normalize to a zero origin so monotonic-clock traces don't start
    # hours into the timeline.
    if trace_events:
        origin = min(entry["ts"] for entry in trace_events)
        for entry in trace_events:
            entry["ts"] = round(entry["ts"] - origin, 3)
            if "dur" in entry:
                entry["dur"] = round(entry["dur"], 3)

    metadata: list[dict] = []
    for source, pid in sorted(ids.pids.items(), key=lambda item: item[1]):
        metadata.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": source},
            }
        )
    for (source, thread), tid in sorted(
        ids.tids.items(), key=lambda item: (ids.pids[item[0][0]], item[1])
    ):
        metadata.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": ids.pids[source],
                "tid": tid,
                "args": {"name": thread},
            }
        )

    trace_events.sort(
        key=lambda entry: (
            entry["ts"],
            entry["pid"],
            entry["tid"],
            entry.get("dur", 0.0),
            entry["name"],
        )
    )

    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ns",
        "dimmunix": {
            "events": consumed,
            "spans": len(spans),
            "instants": len(instants),
            "dropped_unclosed": dropped_unclosed,
        },
    }


__all__ = ["compile_trace"]
