"""Prometheus text exposition for telemetry reports.

One renderer serves every metrics surface: ``Dimmunix.metrics_text()``,
``dimmunix-report metrics`` (local snapshot file, events JSONL, or a
live ``tcp://`` fleet query), and the fleet server's aggregated reply.
The input is the plain-JSON report shape::

    {
      "phases":   {phase: LogHistogram.to_json(), ...},
      "counters": {name: int, ...},            # optional
      "gauges":   {name: number, ...},         # optional
    }

Phase histograms become native Prometheus histograms
(``dimmunix_phase_latency_ns_bucket{phase=...,le=...}`` with cumulative
counts and an ``+Inf`` bucket); ``le`` labels are the exact integer
upper bounds of the log2 buckets, so no precision is lost crossing the
text format.
"""

from __future__ import annotations

from repro.telemetry.histogram import LogHistogram

_HIST_NAME = "dimmunix_phase_latency_ns"


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def render_report(report: dict) -> str:
    """Render a telemetry report dict as Prometheus text exposition."""
    lines: list[str] = []

    phases = report.get("phases") or {}
    if phases:
        lines.append(
            f"# HELP {_HIST_NAME} Per-phase latency of the immunity "
            "request path, nanoseconds."
        )
        lines.append(f"# TYPE {_HIST_NAME} histogram")
        for phase in sorted(phases):
            data = phases[phase]
            histogram = (
                data
                if isinstance(data, LogHistogram)
                else LogHistogram.from_json(data)
            )
            label = _escape_label(phase)
            cumulative = 0
            for upper, count in histogram.nonzero_buckets():
                cumulative += count
                lines.append(
                    f'{_HIST_NAME}_bucket{{phase="{label}",le="{upper}"}} '
                    f"{cumulative}"
                )
            lines.append(
                f'{_HIST_NAME}_bucket{{phase="{label}",le="+Inf"}} '
                f"{histogram.count}"
            )
            lines.append(
                f'{_HIST_NAME}_sum{{phase="{label}"}} {histogram.sum_ns}'
            )
            lines.append(
                f'{_HIST_NAME}_count{{phase="{label}"}} {histogram.count}'
            )

    counters = report.get("counters") or {}
    for name in sorted(counters):
        value = counters[name]
        if not isinstance(value, (int, float)):
            continue
        metric = f"dimmunix_{name}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")

    gauges = report.get("gauges") or {}
    for name in sorted(gauges):
        value = gauges[name]
        if not isinstance(value, (int, float)):
            continue
        metric = f"dimmunix_{name}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")

    return "\n".join(lines) + "\n" if lines else ""


__all__ = ["render_report"]
