"""On-demand RAG introspection: who waits on what, and for how long.

``rag_snapshot`` walks a core's resource-allocation graph (under no
additional locking — callers should hold the adapter glock or accept a
racy read, exactly like ``DimmunixStats``) and returns a plain-JSON
structure: thread nodes with state and per-waiter request age in
nanoseconds (from the ``request_since_ns`` mark the engine stamps at
``Request``), lock nodes with owners and acquisition positions, and the
request/hold/yield edge lists. ``render_dot`` turns a snapshot into
Graphviz DOT for eyeballing a stuck system.

The request-age field is the substrate the ROADMAP's llkd-style
livelock watchdog will consume: a waiter whose age keeps growing while
yield/resume churn continues is the no-forward-progress signature
cycle detection cannot see.
"""

from __future__ import annotations

import time
from typing import Optional


def _position_key(position) -> Optional[str]:
    if position is None:
        return None
    key = getattr(position, "key", None)
    if key is not None:
        return str(key)
    return str(position)


def rag_snapshot(core, *, now_ns: Optional[int] = None) -> dict:
    """Snapshot ``core``'s RAG as a plain-JSON dict."""
    if now_ns is None:
        now_ns = time.monotonic_ns()
    rag = core.rag

    threads = []
    edges = []
    for thread in rag.threads():
        if thread.requesting is not None:
            state = "requesting"
        elif thread.yielding_on is not None:
            state = "yielding"
        else:
            state = "runnable"
        since = getattr(thread, "request_since_ns", None)
        entry = {
            "id": thread.node_id,
            "name": thread.name,
            "state": state,
            "held": sorted(lock.name for lock in thread.held),
            "requesting": (
                thread.requesting.name
                if thread.requesting is not None
                else None
            ),
            "request_position": _position_key(thread.request_pos),
            "request_age_ns": (
                max(0, now_ns - since) if since is not None else None
            ),
            "yielding_on": (
                getattr(thread.yielding_on, "key", None)
                and str(thread.yielding_on.key)
                if thread.yielding_on is not None
                else None
            ),
        }
        threads.append(entry)
        if thread.requesting is not None:
            edges.append(
                {
                    "kind": "request",
                    "from": thread.name,
                    "to": thread.requesting.name,
                    "age_ns": entry["request_age_ns"],
                }
            )
        for witness_thread, witness_lock in thread.yield_witnesses:
            edges.append(
                {
                    "kind": "yield",
                    "from": thread.name,
                    "to": getattr(witness_thread, "name", str(witness_thread)),
                    "via": getattr(witness_lock, "name", str(witness_lock)),
                }
            )

    locks = []
    for lock in rag.locks():
        locks.append(
            {
                "id": lock.node_id,
                "name": lock.name,
                "owner": lock.owner.name if lock.owner is not None else None,
                "acq_position": _position_key(lock.acq_pos),
            }
        )
        if lock.owner is not None:
            edges.append(
                {"kind": "hold", "from": lock.name, "to": lock.owner.name}
            )

    threads.sort(key=lambda entry: entry["id"])
    locks.sort(key=lambda entry: entry["id"])
    return {
        "source": getattr(core, "source", "core"),
        "threads": threads,
        "locks": locks,
        "edges": edges,
        "counts": {
            "threads": len(threads),
            "locks": len(locks),
            "blocked": sum(
                1 for entry in threads if entry["state"] != "runnable"
            ),
            "edges": len(edges),
        },
    }


def _quote(name: str) -> str:
    return '"' + str(name).replace("\\", "\\\\").replace('"', '\\"') + '"'


def render_dot(snapshot: dict) -> str:
    """Render a :func:`rag_snapshot` dict as Graphviz DOT."""
    lines = [
        "digraph rag {",
        "  rankdir=LR;",
        '  node [fontname="monospace"];',
    ]
    for thread in snapshot.get("threads", []):
        label = thread["name"]
        if thread.get("request_age_ns"):
            label += f"\\nwaiting {thread['request_age_ns'] / 1e6:.1f}ms"
        shape = "box" if thread.get("state") == "runnable" else "box3d"
        lines.append(
            f"  {_quote('t:' + thread['name'])} "
            f'[label={_quote(label)} shape={shape}];'
        )
    for lock in snapshot.get("locks", []):
        lines.append(
            f"  {_quote('l:' + lock['name'])} "
            f"[label={_quote(lock['name'])} shape=ellipse];"
        )
    for edge in snapshot.get("edges", []):
        if edge["kind"] == "request":
            src, dst = "t:" + edge["from"], "l:" + edge["to"]
            style = "solid"
        elif edge["kind"] == "hold":
            src, dst = "l:" + edge["from"], "t:" + edge["to"]
            style = "bold"
        else:  # yield witness edge: thread -> thread
            src, dst = "t:" + edge["from"], "t:" + edge["to"]
            style = "dashed"
        lines.append(
            f"  {_quote(src)} -> {_quote(dst)} [style={style}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


__all__ = ["rag_snapshot", "render_dot"]
