"""Per-thread phase-latency accumulators.

The engine's request path runs under the adapter glock, so the
recording side must never take another lock (a telemetry lock acquired
inside the glock would be exactly the kind of nested ordering this
project exists to police). Instead each OS thread records into its own
shard — a plain ``phase -> LogHistogram`` dict hanging off
``threading.local`` — and ``snapshot()`` merges every shard it has seen
under a captured (never-immunized) registry lock.

The merge is best-effort with respect to writers that are mid-``record``
on another thread: a snapshot may miss the very last sample landed
concurrently, which is fine for monitoring output. Shards are only ever
appended to the registry, never removed, so a thread that exits keeps
its samples visible.
"""

from __future__ import annotations

import threading

from repro.telemetry.histogram import LogHistogram

# Capture the primitive classes at import time, before any runtime
# patching replaces threading's attributes with immunized wrappers —
# same convention as the engine and event bus.
_Lock = threading.Lock
_Local = threading.local

#: Phases recorded along the acquire path, in request order.
#:
#: capture      callsite/position resolution (``resolve_stack``)
#: glock_wait   waiting to enter the adapter's global engine lock
#: match        signature instantiation check (``would_instantiate``)
#: acquire      full request -> acquired latency (event-derived)
#: yield_park   parked in an avoidance yield (condition / future wait)
#: store_flush  write-behind history persistence flush
#: sync         one fleet sync-pump cycle (refresh + counter fold)
PHASES = (
    "capture",
    "glock_wait",
    "match",
    "acquire",
    "yield_park",
    "store_flush",
    "sync",
)


class TelemetryCollector:
    """Lock-free-on-record, merge-on-read phase latency collector."""

    def __init__(self) -> None:
        self._local = _Local()
        self._registry_lock = _Lock()
        self._shards: list[dict[str, LogHistogram]] = []

    def record(self, phase: str, ns: int) -> None:
        """Land one phase duration for the calling thread. No locks."""
        try:
            shard = self._local.shard
        except AttributeError:
            shard = {}
            # Registering the fresh shard takes the registry lock once
            # per thread lifetime — never again on the hot path.
            with self._registry_lock:
                self._shards.append(shard)
            self._local.shard = shard
        histogram = shard.get(phase)
        if histogram is None:
            histogram = shard[phase] = LogHistogram()
        histogram.record(ns)

    def snapshot(self) -> dict[str, LogHistogram]:
        """Merge all per-thread shards into fresh histograms.

        Best-effort against concurrent recorders: a sample landed while
        the merge walks its shard may or may not appear.
        """
        with self._registry_lock:
            shards = list(self._shards)
        merged: dict[str, LogHistogram] = {}
        for shard in shards:
            for phase, histogram in list(shard.items()):
                target = merged.get(phase)
                if target is None:
                    target = merged[phase] = LogHistogram()
                target.merge(histogram)
        return merged

    def snapshot_json(self) -> dict[str, dict]:
        """``snapshot()`` in the plain-JSON wire form, keyed by phase."""
        return {
            phase: histogram.to_json()
            for phase, histogram in sorted(self.snapshot().items())
        }

    def thread_count(self) -> int:
        """How many threads have recorded at least one sample."""
        with self._registry_lock:
            return len(self._shards)


__all__ = ["PHASES", "TelemetryCollector"]
