#!/usr/bin/env python3
"""§3.2's wait()-induced lock inversion, on the deterministic VM.

The deadlock only exists because ``Object.wait()`` *re-acquires* its
monitor on the way out::

    Thread 1:                      Thread 2:
        synchronized(x) {              synchronized(x) {
          synchronized(y) {              synchronized(y) { }
            x.wait();                  }
        }}

Thread 1 parks inside ``x.wait()`` still holding ``y``; thread 2 takes
``x``, notifies, then blocks on ``y`` — and thread 1's hidden
reacquisition of ``x`` closes the cycle. Bytecode instrumentation never
sees that acquisition; a VM-level (waitMonitor) interception does, which
is the paper's argument for patching the Dalvik VM.

The script shows: (1) the vanilla freeze, (2) Dimmunix detecting the
cycle at the reacquisition, and (3) with a *timed* wait — the common
real-world pattern — the recorded signature steering run 2 around the
deadlock entirely.

Usage::

    python examples/wait_inversion.py
"""

from __future__ import annotations

from repro.dalvik.vm import VMConfig
from repro.workloads.scenarios import run_wait_inversion_vm


def live_count(vm) -> int:
    return sum(1 for thread in vm.threads if thread.is_live())


def main() -> None:
    print("=== vanilla VM: the inversion freezes both threads ===")
    vanilla = run_wait_inversion_vm(VMConfig().vanilla())
    print(
        f"  {live_count(vanilla)} thread(s) stuck forever; "
        "no diagnosis available"
    )

    print()
    print("=== Dimmunix VM: the hidden reacquisition is visible ===")
    detected = run_wait_inversion_vm()
    print(f"  detections: {len(detected.detections)}")
    for signature in detected.detections:
        for index, entry in enumerate(signature.entries):
            outer, inner = entry.outer.top(), entry.inner.top()
            print(
                f"  thread {index + 1}: acquired at {outer.file}:"
                f"{outer.line}, blocked at {inner.file}:{inner.line}"
            )
    print(
        "  (blocked position line 12 is the x.wait() statement — the "
        "acquisition only waitMonitor interception can see)"
    )

    print()
    print("=== timed wait: detect once, then avoid ===")
    first = run_wait_inversion_vm(wait_timeout_ticks=5_000)
    print(
        f"  run 1: {len(first.detections)} detection(s), "
        f"{live_count(first)} thread(s) frozen"
    )
    second = run_wait_inversion_vm(
        history=first.core.history, wait_timeout_ticks=5_000
    )
    print(
        f"  run 2: {len(second.detections)} detection(s), "
        f"{live_count(second)} thread(s) frozen, "
        f"{second.core.stats.yields} avoidance yield(s)"
    )

    print()
    if live_count(second) == 0 and not second.detections:
        print(
            "run 2 completed: the notifier was parked at the dangerous "
            "acquisition, the wait timed out, and both threads finished."
        )
    else:
        print("unexpected outcome - see above.")


if __name__ == "__main__":
    main()
