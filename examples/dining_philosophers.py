#!/usr/bin/env python3
"""Dining philosophers with deadlock immunity — real threads.

Five philosophers, five forks, everyone grabs left-then-right: the
classic circular wait. Without immunity the table eventually wedges.
With Dimmunix the first cycle is detected (one philosopher backs off
with a ``DeadlockDetectedError`` and retries), its signature enters the
history, and *subsequent dinners complete on avoidance alone* — watch
the second dinner report zero detections but nonzero yields.

Usage::

    python examples/dining_philosophers.py [philosophers] [meals]
"""

from __future__ import annotations

import sys

from repro import DimmunixConfig
from repro.runtime import DimmunixRuntime
from repro.workloads.scenarios import run_dining_philosophers


def dinner(runtime: DimmunixRuntime, label: str, seats: int, meals: int) -> None:
    outcome = run_dining_philosophers(
        runtime, philosophers=seats, meals=meals
    )
    status = "finished" if outcome.completed else "DID NOT FINISH"
    print(
        f"  {label}: {status}; {outcome.meals_eaten}/{seats * meals} meals, "
        f"{outcome.deadlocks_detected} deadlock(s) detected, "
        f"{runtime.stats.yields} avoidance yields so far, "
        f"{len(runtime.history)} signature(s) in history"
    )


def main() -> None:
    seats = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    meals = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    runtime = DimmunixRuntime(
        DimmunixConfig(yield_timeout=1.0), name="dining-room"
    )

    print(f"=== dinner 1: {seats} philosophers, {meals} meals each ===")
    dinner(runtime, "dinner 1", seats, meals)

    print()
    print("=== dinner 2: same runtime, antibodies loaded ===")
    detections_before = runtime.stats.deadlocks_detected
    dinner(runtime, "dinner 2", seats, meals)
    new_detections = runtime.stats.deadlocks_detected - detections_before

    print()
    if new_detections == 0:
        print(
            "dinner 2 needed no detections: the signatures recorded at "
            "dinner 1 steer the philosophers around the circular wait."
        )
    else:
        print(
            f"dinner 2 still detected {new_detections} cycle(s) — new "
            "interleavings can expose distinct signatures; they are now "
            "in the history too."
        )


if __name__ == "__main__":
    main()
