#!/usr/bin/env python3
"""Quickstart: deadlock immunity for ordinary Python threads.

Two threads take two locks in opposite orders — the textbook AB/BA
deadlock. Run once: Dimmunix detects the cycle at the moment it is about
to close, raises in one thread, and records the deadlock's *signature*
(where each lock was acquired). Run again with the same history: the
deadlock is avoided before it can form — the second thread is briefly
parked at the dangerous acquisition instead, then proceeds when the
coast is clear.

Usage::

    python examples/quickstart.py            # in-memory history: detect, then avoid
    python examples/quickstart.py /tmp/h.dx  # persistent history across runs
"""

from __future__ import annotations

import sys
import threading
import time
from pathlib import Path

from repro import DimmunixConfig
from repro.errors import DeadlockDetectedError
from repro.runtime import DimmunixRuntime


def rendezvous(barrier: threading.Barrier, seconds: float = 0.5) -> None:
    """Meet the other thread if it shows up; don't insist.

    In run 1 both threads arrive and the deadlock window opens. In run 2
    avoidance parks one thread *before* it reaches this point — exactly
    the intervention we want — so the other must carry on alone.
    """
    try:
        barrier.wait(timeout=seconds)
    except threading.BrokenBarrierError:
        pass


def debit_then_credit(account_a, account_b, barrier, log) -> None:
    try:
        with account_a:
            rendezvous(barrier)
            time.sleep(0.01)
            with account_b:
                log.append("debit->credit transferred")
    except DeadlockDetectedError as error:
        log.append(str(error))


def credit_then_debit(account_a, account_b, barrier, log) -> None:
    try:
        with account_b:
            rendezvous(barrier)
            time.sleep(0.01)
            with account_a:
                log.append("credit->debit transferred")
    except DeadlockDetectedError as error:
        log.append(str(error))


def run_once(runtime: DimmunixRuntime, label: str) -> None:
    account_a = runtime.lock("account-a")
    account_b = runtime.lock("account-b")
    barrier = threading.Barrier(2)
    log: list = []

    workers = [
        threading.Thread(
            target=debit_then_credit, args=(account_a, account_b, barrier, log)
        ),
        threading.Thread(
            target=credit_then_debit, args=(account_a, account_b, barrier, log)
        ),
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=10)

    for line in log:
        print(f"[{label}]   {line}")
    print(
        f"[{label}] stats: {runtime.stats.deadlocks_detected} detected, "
        f"{runtime.stats.yields} avoidance yields, "
        f"{len(runtime.history)} signature(s) in history"
    )


def main() -> None:
    history_path = Path(sys.argv[1]) if len(sys.argv) > 1 else None
    config = DimmunixConfig(history_path=history_path)

    print("=== run 1: no antibodies yet -> the deadlock is detected ===")
    first = DimmunixRuntime(config, name="quickstart-1")
    run_once(first, "run 1")

    print()
    print("=== run 2: same history -> the deadlock is avoided ===")
    # A fresh runtime simulates a process restart. With a history *path*
    # the signature is reloaded from disk; without one we hand the
    # in-memory history over explicitly.
    second = DimmunixRuntime(
        config,
        history=None if history_path else first.history,
        name="quickstart-2",
    )
    run_once(second, "run 2")

    print()
    if second.stats.deadlocks_detected == 0 and second.stats.yields > 0:
        print("immunity works: run 2 had no deadlock, only a brief yield.")
    else:
        print("unexpected: run 2 should have avoided the deadlock.")


if __name__ == "__main__":
    main()
