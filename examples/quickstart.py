#!/usr/bin/env python3
"""Quickstart: deadlock immunity for ordinary Python threads.

Two threads take two locks in opposite orders — the textbook AB/BA
deadlock. Run once: Dimmunix detects the cycle at the moment it is about
to close, raises in one thread, and records the deadlock's *signature*
(where each lock was acquired). Run again with the same history: the
deadlock is avoided before it can form — the second thread is briefly
parked at the dangerous acquisition instead, then proceeds when the
coast is clear.

The whole setup is the five-line facade::

    import repro

    with repro.immunity() as dx:
        a, b = dx.lock("account-a"), dx.lock("account-b")
        ...  # use a and b like threading.Lock; deadlocks are detected,
        ...  # recorded, and (next time) avoided

(The pre-facade construction path — ``DimmunixRuntime(config)`` from
:mod:`repro.runtime` — still works and is not going away, but new code
should start from ``repro.immunity`` / ``repro.Dimmunix``.)

Usage::

    python examples/quickstart.py            # in-memory history: detect, then avoid
    python examples/quickstart.py /tmp/h.dx  # persistent history across runs
"""

from __future__ import annotations

import sys
import threading
import time
from pathlib import Path

import repro
from repro.errors import DeadlockDetectedError


def rendezvous(barrier: threading.Barrier, seconds: float = 0.5) -> None:
    """Meet the other thread if it shows up; don't insist.

    In run 1 both threads arrive and the deadlock window opens. In run 2
    avoidance parks one thread *before* it reaches this point — exactly
    the intervention we want — so the other must carry on alone.
    """
    try:
        barrier.wait(timeout=seconds)
    except threading.BrokenBarrierError:
        pass


def debit_then_credit(account_a, account_b, barrier, log) -> None:
    try:
        with account_a:
            rendezvous(barrier)
            time.sleep(0.01)
            with account_b:
                log.append("debit->credit transferred")
    except DeadlockDetectedError as error:
        log.append(str(error))


def credit_then_debit(account_a, account_b, barrier, log) -> None:
    try:
        with account_b:
            rendezvous(barrier)
            time.sleep(0.01)
            with account_a:
                log.append("credit->debit transferred")
    except DeadlockDetectedError as error:
        log.append(str(error))


def run_once(session: "repro.Dimmunix", label: str) -> None:
    account_a = session.lock("account-a")
    account_b = session.lock("account-b")
    barrier = threading.Barrier(2)
    log: list = []

    workers = [
        threading.Thread(
            target=debit_then_credit, args=(account_a, account_b, barrier, log)
        ),
        threading.Thread(
            target=credit_then_debit, args=(account_a, account_b, barrier, log)
        ),
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=10)

    for line in log:
        print(f"[{label}]   {line}")
    # The same numbers, two ways: legacy counters and the event stream.
    print(
        f"[{label}] stats: {session.stats.deadlocks_detected} detected, "
        f"{session.stats.yields} avoidance yields, "
        f"{len(session.history)} signature(s) in history "
        f"(events: {session.counter.count('detection')} detection, "
        f"{session.counter.count('yield')} yield)"
    )


def main() -> None:
    history_path = Path(sys.argv[1]) if len(sys.argv) > 1 else None

    print("=== run 1: no antibodies yet -> the deadlock is detected ===")
    with repro.immunity(history_path=history_path, name="quickstart-1") as first:
        run_once(first, "run 1")
        carried_over = first.history

    print()
    print("=== run 2: same history -> the deadlock is avoided ===")
    # A fresh session simulates a process restart. With a history *path*
    # the signature is reloaded from disk; without one we hand the
    # in-memory history over explicitly.
    with repro.immunity(
        history_path=history_path,
        history=None if history_path else carried_over,
        name="quickstart-2",
    ) as second:
        run_once(second, "run 2")
        avoided = (
            second.stats.deadlocks_detected == 0 and second.stats.yields > 0
        )

    print()
    if avoided:
        print("immunity works: run 2 had no deadlock, only a brief yield.")
    else:
        print("unexpected: run 2 should have avoided the deadlock.")


if __name__ == "__main__":
    main()
