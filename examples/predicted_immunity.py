#!/usr/bin/env python3
"""Predictive immunity: the antibody arrives before the first infection.

Everywhere else in this repo the immunity loop starts with a deadlock —
run 1 suffers the cycle, the signature is recorded, run 2 avoids it.
This example never suffers it. The static lock-order analyzer
(``dimmunix-lint`` / :mod:`repro.predict.staticlint`) reads *this very
file*, finds the AB/BA inversion between the two transfer functions
below, compiles it into a **predicted** signature, and seeds it into a
fresh history. The first — and only — run of the buggy interleaving is
then avoided outright: zero deadlocks detected, and the prediction is
*promoted* the moment it prevents the real thing.

Usage::

    python examples/predicted_immunity.py
"""

from __future__ import annotations

import threading
import time

import repro
from repro.errors import DeadlockDetectedError
from repro.predict import lint_paths, seed_predictions


def rendezvous(barrier: threading.Barrier, seconds: float = 0.5) -> None:
    """Meet the other thread if it shows up; don't insist.

    When avoidance parks one thread before it reaches this point, the
    other must carry on alone — that is the intervention working.
    """
    try:
        barrier.wait(timeout=seconds)
    except threading.BrokenBarrierError:
        pass


def run_buggy_interleaving(session: "repro.Dimmunix") -> dict:
    ledger = session.lock("pi-ledger")
    audit = session.lock("pi-audit")
    barrier = threading.Barrier(2)
    log: list = []

    def post_then_audit() -> None:
        try:
            with ledger:
                rendezvous(barrier)
                time.sleep(0.01)
                with audit:
                    log.append("post->audit done")
        except DeadlockDetectedError as error:
            log.append(f"DEADLOCK: {error}")

    def audit_then_post() -> None:
        try:
            with audit:
                rendezvous(barrier)
                time.sleep(0.01)
                with ledger:
                    log.append("audit->post done")
        except DeadlockDetectedError as error:
            log.append(f"DEADLOCK: {error}")

    workers = [
        threading.Thread(target=post_then_audit, name="poster"),
        threading.Thread(target=audit_then_post, name="auditor"),
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=10)
    return {"log": log}


def main() -> None:
    print("=== step 1: lint this file (no execution, pure AST) ===")
    diagnostics, _errors = lint_paths([__file__])
    for diagnostic in diagnostics:
        print(f"  {diagnostic.render()}")
    if not diagnostics:
        print("  no cycles found — nothing to predict, aborting demo")
        return

    print()
    print("=== step 2: seed the predictions, then run the bug ONCE ===")
    with repro.immunity(name="predicted") as session:
        seeded = seed_predictions(session.history, diagnostics)
        print(f"  {seeded} predicted antibody(ies) in a fresh history")
        result = run_buggy_interleaving(session)
        for line in result["log"]:
            print(f"  {line}")
        stats = session.stats
        print(
            f"  stats: {stats.deadlocks_detected} detected, "
            f"{stats.predicted_avoidances} predicted avoidance(s), "
            f"{stats.predictions_promoted} promotion(s)"
        )
        counts = session.history.provenance_counts()

    print()
    if stats.deadlocks_detected == 0 and stats.predicted_avoidances > 0:
        print(
            "prediction works: the very first run was avoided — "
            f"history now holds {counts['promoted']} promoted antibody(ies)."
        )
    else:
        print("unexpected: the first run should have been avoided.")


if __name__ == "__main__":
    main()
