#!/usr/bin/env python3
"""Dining philosophers with deadlock immunity — asyncio tasks.

Five philosopher *tasks*, five immunized ``asyncio.Lock`` forks, everyone
grabs left-then-right: the classic circular wait, on the cooperative
schedule. The first dinner detects the cycle once (one task backs off
with a ``DeadlockDetectedError`` and retries); its signature enters the
history and the second dinner completes *on avoidance alone* — a parked
task simply awaits, so the event loop never blocks.

The finale is the looper-style message/handler inversion from
``repro.aio.scenarios``: two message loops whose handlers synchronously
cross-send while holding their own queue monitor — detected once, then
immune.

Usage::

    python examples/async_philosophers.py [philosophers] [meals]
"""

from __future__ import annotations

import asyncio
import sys

from repro import DimmunixConfig
from repro.aio import AsyncioDimmunixRuntime
from repro.aio.scenarios import (
    run_async_dining_philosophers,
    run_looper_inversion,
)


def dinner(
    runtime: AsyncioDimmunixRuntime, label: str, seats: int, meals: int
) -> None:
    outcome = asyncio.run(
        run_async_dining_philosophers(
            runtime, philosophers=seats, meals=meals
        )
    )
    status = "finished" if outcome.completed else "DID NOT FINISH"
    print(
        f"  {label}: {status}; {outcome.meals_eaten}/{seats * meals} meals, "
        f"{outcome.deadlocks_detected} deadlock(s) detected, "
        f"{runtime.stats.yields} avoidance yields so far, "
        f"{len(runtime.history)} signature(s) in history"
    )


def main() -> None:
    seats = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    meals = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    runtime = AsyncioDimmunixRuntime(
        DimmunixConfig(yield_timeout=1.0), name="aio-dining-room"
    )

    print(f"=== dinner 1: {seats} philosopher tasks, {meals} meals each ===")
    dinner(runtime, "dinner 1", seats, meals)

    print()
    print("=== dinner 2: same runtime, antibodies loaded ===")
    detections_before = runtime.stats.deadlocks_detected
    dinner(runtime, "dinner 2", seats, meals)
    new_detections = runtime.stats.deadlocks_detected - detections_before

    print()
    if new_detections == 0:
        print(
            "dinner 2 needed no detections: the signature recorded at "
            "dinner 1 steers the tasks around the circular wait, and the "
            "parked task awaits instead of blocking the event loop."
        )
    else:
        print(
            f"dinner 2 still detected {new_detections} cycle(s) — new "
            "interleavings can expose distinct signatures; they are now "
            "in the history too."
        )

    print()
    print("=== looper-style message/handler inversion ===")
    looper_runtime = AsyncioDimmunixRuntime(
        DimmunixConfig(yield_timeout=1.0), name="aio-loopers"
    )
    first = asyncio.run(run_looper_inversion(looper_runtime))
    second = asyncio.run(run_looper_inversion(looper_runtime))
    print(
        f"  run 1: {first.handled} messages handled, "
        f"{first.deadlocks_detected} deadlock(s) detected"
    )
    print(
        f"  run 2: {second.handled} messages handled, "
        f"{second.deadlocks_detected} deadlock(s) detected, "
        f"{looper_runtime.stats.yields} yield(s)"
    )
    if second.deadlocks_detected == 0 and second.completed:
        print(
            "  the cross-sending handlers are immune: dispatch is parked "
            "on the antibody instead of deadlocking the loopers."
        )


if __name__ == "__main__":
    main()
