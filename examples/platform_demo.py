#!/usr/bin/env python3
"""Platform-wide immunity: monkey-patch ``threading`` itself.

The paper's defining property is that *no application changes*: Dimmunix
lives inside the Dalvik VM, underneath every app. The Python analog is
the platform-wide patch, which substitutes ``threading.Lock``, ``RLock``
and ``Condition`` process-wide. Code that has never heard of Dimmunix —
here, a small "third-party" job queue built on stdlib primitives — runs
immunized, and its deadlocks are detected and then avoided.

Through the facade that is one argument::

    with repro.immunity(patch=True) as dx:
        ...  # every threading.Lock in the process is now immunized

(The pre-facade spelling — ``patch.immunized(DimmunixRuntime(config))``
from :mod:`repro.runtime` — still works; new code should prefer the
facade.)

Usage::

    python examples/platform_demo.py
"""

from __future__ import annotations

import queue
import threading
import time

import repro
from repro.errors import DeadlockDetectedError


# ----------------------------------------------------------------------
# "third-party" code: plain threading, no Dimmunix imports
# ----------------------------------------------------------------------

class AccountService:
    """A deliberately deadlock-prone service written with stdlib locks."""

    def __init__(self) -> None:
        self.ledger_lock = threading.Lock()
        self.audit_lock = threading.Lock()
        self.ledger: list = []

    @staticmethod
    def _meet(rendezvous) -> None:
        # Meet the peer if it shows up; in round 2 avoidance parks the
        # peer before it arrives, so don't insist.
        try:
            rendezvous.wait(timeout=0.5)
        except threading.BrokenBarrierError:
            pass

    def record_then_audit(self, rendezvous) -> str:
        with self.ledger_lock:
            self._meet(rendezvous)
            time.sleep(0.01)
            with self.audit_lock:
                self.ledger.append("record")
                return "record-then-audit done"

    def audit_then_record(self, rendezvous) -> str:
        with self.audit_lock:
            self._meet(rendezvous)
            time.sleep(0.01)
            with self.ledger_lock:
                self.ledger.append("audit")
                return "audit-then-record done"


def exercise(service: AccountService, log: list) -> None:
    rendezvous = threading.Barrier(2)

    def call(method):
        try:
            log.append(method(rendezvous))
        except DeadlockDetectedError:
            log.append("deadlock detected and reported")

    workers = [
        threading.Thread(target=call, args=(service.record_then_audit,)),
        threading.Thread(target=call, args=(service.audit_then_record,)),
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=10)


def main() -> None:
    with repro.immunity(yield_timeout=1.0, patch=True, name="platform") as dx:
        # Even queue.Queue, created *after* the patch, runs on Dimmunix
        # primitives — construction allocates a Lock and three Conditions.
        jobs: queue.Queue = queue.Queue()
        assert type(jobs.mutex).__name__ == "DimmunixLock"
        print(
            "threading.Lock is now",
            type(threading.Lock()).__name__,
            "- every library in this process is immunized",
        )

        print()
        print("=== round 1: the service deadlocks once ===")
        log: list = []
        exercise(AccountService(), log)
        for line in log:
            print(f"  {line}")
        print(
            f"  history now holds {len(dx.history)} signature(s); "
            f"{dx.stats.deadlocks_detected} detection(s) "
            f"({dx.counter.count('detection')} detection event(s))"
        )

        print()
        print("=== round 2: same positions, no deadlock ===")
        log = []
        exercise(AccountService(), log)
        for line in log:
            print(f"  {line}")
        print(
            f"  detections total: {dx.stats.deadlocks_detected} "
            f"(unchanged), avoidance yields: {dx.stats.yields}"
        )

    print()
    print(
        "patch removed -> threading.Lock is",
        type(threading.Lock()).__name__,
        "again",
    )


if __name__ == "__main__":
    main()
