#!/usr/bin/env python3
"""Livelock: the failure the cycle detector cannot see — and the watchdog can.

Dimmunix's structural machinery (detection + avoidance) only triggers on
*cycles* in the resource-allocation graph. A livelock never forms one:
here, a victim thread is parked by its own antibody while a neighbor
churns the signature's positions, so the victim wakes, re-parks, wakes,
re-parks — making zero forward progress with every individual decision
locally correct. The RAG stays acyclic throughout.

The :class:`repro.watchdog.LivenessWatchdog` (llkd-style, PR-9) watches
forward progress instead of structure: per-node sliding windows of
lifecycle events plus periodic request-age scans feed an escalation
ladder — observe → ``LivelockSuspectedEvent`` (with a structured stall
report) → ``WatchdogMitigationEvent``. Under the ``break_youngest``
policy the mitigation grants the youngest stalled waiter a one-shot
bypass through the starvation-override machinery, unsticking the victim
*while the storm is still running*.

Usage::

    python examples/livelock_pingpong.py
"""

from __future__ import annotations

import repro
from repro.workloads.livelock import run_pingpong_yield_storm


def describe(event) -> str:
    age_ms = getattr(event, "age_ns", 0) / 1e6
    if event.kind == "livelock-suspected":
        suspects = ", ".join(
            s["node"] for s in event.report.get("suspects", ())
        )
        return (
            f"[suspect]  {event.thread}: {event.reason} "
            f"(age {age_ms:.0f} ms, scan {event.scan}; "
            f"report names: {suspects})"
        )
    if event.kind == "watchdog-mitigation":
        return (
            f"[mitigate] {event.thread}: {event.policy} -> "
            f"{event.action} (age {age_ms:.0f} ms)"
        )
    return f"[{event.kind}] {event.thread} (trigger={event.trigger})"


def main() -> None:
    ladder: list = []
    with repro.immunity(
        name="livelock",
        watchdog=True,
        watchdog_policy="break_youngest",
        watchdog_scan_interval=0.05,
        watchdog_stall_age=0.15,
        watchdog_storm_window=0.5,
        watchdog_storm_ratio=4,
        yield_timeout=None,  # let the watchdog act, not the safety net
        auto_save=False,
    ) as dx:
        dx.subscribe(
            ladder.append,
            kinds=("livelock-suspected", "watchdog-mitigation",
                   "starvation"),
        )

        print("=== phase 1: earn the antibody (one real AB/BA deadlock) ===")
        print("=== phase 2: neighbor squats on A and churns; victim parks"
              " on its own antibody -> wake/re-park storm ===")
        outcome = run_pingpong_yield_storm(dx.runtime(), duration=15.0)

        print()
        print("=== the escalation ladder, as it fired ===")
        for event in ladder:
            print(f"  {describe(event)}")

        health = dx.health()
        stats = dx.stats
        print()
        print(
            f"  health: {health['livelock_suspects']} suspicion(s), "
            f"{health['watchdog_mitigations']} mitigation(s), "
            f"{health['suspected_now']} suspect(s) still open"
        )

    print()
    if outcome.unstuck_during_storm:
        print(
            "the watchdog unstuck the victim while the neighbor was "
            "still churning — only the bypass can do that "
            f"(storm ran {outcome.storm_cycles} cycles; "
            f"{stats.starvations_detected} starvation override(s))."
        )
    else:
        print("unexpected: the victim should have been bypassed "
              "mid-storm.")


if __name__ == "__main__":
    main()
