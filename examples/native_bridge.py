#!/usr/bin/env python3
"""Deadlocks across the JNI boundary, and §4's pthread interception.

A Java thread holds a monitor and calls into native code that locks a
pthread mutex; a native thread holds that mutex and calls back into Java.
Shipped Android Dimmunix is blind to the native half of the cycle — the
paper names this its open limitation, and sketches the fix: intercept
POSIX-thread locking, but *only while native code executes*, because the
VM implements Java monitors on those same routines.

The script measures all three policies on the substrate VM:

* OFF         — the freeze goes undetected (the paper's shipped state);
* NATIVE_ONLY — the cross-boundary cycle is detected, the signature
                names one Java and one C++ position, and the reboot is
                immune;
* ALWAYS      — the careless hook: the VM's own locking is processed
                twice and collapses onto a single <libdvm> position.

Usage::

    python examples/native_bridge.py
"""

from __future__ import annotations


from repro.config import InterceptionMode
from repro.dalvik.program import ProgramBuilder
from repro.dalvik.vm import DalvikVM, VMConfig
from repro.ndk.pthread_layer import VM_INTERNAL_FILE
from repro.ndk.scenarios import run_jni_inversion


def live(vm) -> int:
    return sum(1 for thread in vm.threads if thread.is_live())


def main() -> None:
    print("=== InterceptionMode.OFF: shipped Android Dimmunix ===")
    off = run_jni_inversion(InterceptionMode.OFF)
    print(
        f"  {live(off)} thread(s) frozen, {len(off.detections)} detection(s)"
        " - the native mutex is invisible, the freeze is anonymous"
    )

    print()
    print("=== InterceptionMode.NATIVE_ONLY: the paper's proposal ===")
    first = run_jni_inversion(InterceptionMode.NATIVE_ONLY)
    print(f"  boot 1: {len(first.detections)} detection(s)")
    for signature in first.detections:
        for index, entry in enumerate(signature.entries):
            frame = entry.outer.top()
            print(
                f"    thread {index + 1} acquired at {frame.file}:{frame.line}"
            )
    second = run_jni_inversion(
        InterceptionMode.NATIVE_ONLY, history=first.core.history
    )
    print(
        f"  boot 2: {live(second)} frozen, {len(second.detections)} "
        f"detection(s), {second.core.stats.yields} avoidance yield(s)"
    )

    print()
    print("=== InterceptionMode.ALWAYS: why 'carefully' matters ===")
    builder = ProgramBuilder("App.java")
    builder.set_reg("i", 50)
    builder.label("loop")
    builder.monitor_enter("obj", line=50)
    builder.monitor_exit("obj", line=52)
    builder.loop_dec("i", "loop")
    builder.halt()
    naive_vm = DalvikVM(
        VMConfig().evolve(native_interception=InterceptionMode.ALWAYS)
    )
    naive_vm.spawn(builder.build(), "java-worker")
    naive_vm.run()
    internal = [
        pos
        for pos in naive_vm.core.positions
        if pos.key and pos.key[0][0] == VM_INTERNAL_FILE
    ]
    print(
        f"  50 Java monitor acquisitions -> "
        f"{naive_vm.core.stats.requests} core requests "
        f"(double-intercepted), with all VM-internal locking collapsed "
        f"onto {len(internal)} <libdvm> position"
    )

    print()
    if live(second) == 0 and not second.detections:
        print(
            "native-context interception closes the NDK gap: detect once, "
            "avoid forever - without double-processing the VM itself."
        )


if __name__ == "__main__":
    main()
