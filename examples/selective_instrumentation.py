#!/usr/bin/env python3
"""Instrumentation-based Dimmunix: weave antibodies into the source (§3.1).

The paper contrasts two deployment styles. Interception (Android
Dimmunix, `repro.runtime`) covers everything but cannot be selective;
instrumentation (Java Dimmunix, here `repro.instrument`) can guard *only
the synchronization statements previously involved in deadlocks*.

This script plays a vendor's workflow:

1. first deployment — fully woven; the app deadlocks once and the
   signature is recorded;
2. redeployment — woven *selectively* against that history: only the two
   hot `with` statements carry guards, the cold path pays nothing, and
   the deadlock is avoided anyway.

Usage::

    python examples/selective_instrumentation.py
"""

from __future__ import annotations

import textwrap
import threading
import time

from repro import DimmunixConfig
from repro.errors import DeadlockDetectedError
from repro.instrument import Weaver
from repro.runtime import DimmunixRuntime

APP_SOURCE = textwrap.dedent(
    """
    import threading

    accounts_lock = threading.Lock()
    audit_lock = threading.Lock()
    stats_lock = threading.Lock()

    def transfer(meet):
        with accounts_lock:
            meet()
            with audit_lock:
                return "transfer ok"

    def audit(meet):
        with audit_lock:
            meet()
            with accounts_lock:
                return "audit ok"

    def record_metric(iterations):
        for _ in range(iterations):
            with stats_lock:
                pass
        return iterations
    """
).strip()


def provoke(module, log: list) -> None:
    barrier = threading.Barrier(2)

    def meet() -> None:
        try:
            barrier.wait(timeout=0.5)
        except threading.BrokenBarrierError:
            pass
        time.sleep(0.01)

    def call(func) -> None:
        try:
            log.append(func(meet))
        except DeadlockDetectedError:
            log.append("deadlock detected")

    workers = [
        threading.Thread(target=call, args=(module.get("transfer"),)),
        threading.Thread(target=call, args=(module.get("audit"),)),
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=10)


def main() -> None:
    print("=== deployment 1: fully woven ===")
    first_runtime = DimmunixRuntime(
        DimmunixConfig(yield_timeout=1.0), name="deploy-1"
    )
    full_weaver = Weaver(first_runtime)
    app = full_weaver.instrument(APP_SOURCE, "bankapp.py")
    print(f"  {app.report.summary()}")
    log: list = []
    provoke(app, log)
    for line in log:
        print(f"  {line}")
    print(f"  history now holds {len(first_runtime.history)} signature(s)")

    print()
    print("=== deployment 2: selectively woven against the history ===")
    second_runtime = DimmunixRuntime(
        DimmunixConfig(yield_timeout=1.0),
        history=first_runtime.history,
        name="deploy-2",
    )
    selective_weaver = Weaver(second_runtime, selective=True)
    app2 = selective_weaver.instrument(APP_SOURCE, "bankapp.py")
    print(f"  {app2.report.summary()}")
    for site in app2.report.sites_instrumented:
        print(f"    guarded: {site}")

    requests_before = second_runtime.stats.requests
    app2.get("record_metric")(10_000)
    print(
        f"  cold path: 10,000 stats_lock acquisitions -> "
        f"{second_runtime.stats.requests - requests_before} Dimmunix calls"
    )

    log = []
    provoke(app2, log)
    for line in log:
        print(f"  {line}")
    print(
        f"  detections this deployment: "
        f"{second_runtime.stats.deadlocks_detected}, avoidance yields: "
        f"{second_runtime.stats.yields}"
    )

    print()
    if (
        second_runtime.stats.deadlocks_detected == 0
        and "deadlock detected" not in log
    ):
        print(
            "redeployment immune: two guards where the deadlock lived, "
            "zero overhead everywhere else."
        )
    else:
        print("unexpected: deployment 2 should have avoided the deadlock.")


if __name__ == "__main__":
    main()
