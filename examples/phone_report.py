#!/usr/bin/env python3
"""Regenerate the paper's Table 1 on two simulated phones.

Boots an immunized and a vanilla phone image, runs the eight profiled
applications on both, and prints the threads / peak-syncs / memory table
plus the device-wide consumption and power attribution — the full §5
characterization in one run.

Usage::

    python examples/phone_report.py
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.android.apps.catalog import TABLE1_APPS
from repro.android.phone import POWER_PROFILE, PhoneSimulator, run_table1_phone_pair


def main() -> None:
    print("booting two phones and running 8 apps on each...")
    rows, report, immunized, vanilla = run_table1_phone_pair(TABLE1_APPS)

    print()
    print(
        render_table(
            ["Application", "Threads", "Syncs/sec", "Dimmunix", "Vanilla", "Overhead"],
            [
                [
                    row.name,
                    row.threads,
                    f"{row.peak_syncs_per_sec:.0f}",
                    f"{row.dimmunix_mb:.1f} MB",
                    f"{row.vanilla_mb:.1f} MB",
                    f"{row.overhead_pct:.1f}%",
                ]
                for row in rows
            ],
            title="Table 1 - statistics about various Android applications",
        )
    )

    print()
    print(
        f"memory, all running applications: Dimmunix "
        f"{report.dimmunix_pct:.0f}% vs vanilla {report.vanilla_pct:.0f}% "
        f"of device RAM (paper: 52% vs 50%)"
    )

    # Power uses the bursty interactive profile (the paper measured after
    # normal usage, not a saturating benchmark loop).
    phones = (PhoneSimulator(immunized=True), PhoneSimulator(immunized=False))
    for phone in phones:
        for spec in TABLE1_APPS:
            phone.launch_app(spec, phases=POWER_PROFILE)
    power_with = phones[0].power_attribution()
    power_without = phones[1].power_attribution()
    print(
        f"power, apps+OS attribution: {power_with.apps_percent}% with "
        f"Dimmunix, {power_without.apps_percent}% without (paper: 14% both)"
    )


if __name__ == "__main__":
    main()
