#!/usr/bin/env python3
"""Ordered transfers: the fixed program that ``dimmunix-lint`` blesses.

This is the repaired twin of ``predicted_immunity.py``. Both workers
take the ledger lock *before* the audit lock — one global order, no
inversion, no cycle. Lint it and the analyzer stays silent::

    dimmunix-lint examples/ordered_transfers.py   # exits 0

CI runs exactly that check (plus the buggy files, which must flag) so
the analyzer is continuously validated in both directions.

Usage::

    python examples/ordered_transfers.py
"""

from __future__ import annotations

import threading

import repro


def main() -> None:
    with repro.immunity(name="ordered") as session:
        ledger = session.lock("transfer-ledger")
        audit = session.lock("transfer-audit")
        log: list = []

        def post(label: str) -> None:
            # Single global order: ledger, then audit. Always.
            with ledger:
                with audit:
                    log.append(f"{label} posted")

        workers = [
            threading.Thread(target=post, args=(f"transfer-{n}",))
            for n in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=10)

        for line in log:
            print(line)
        stats = session.stats
        print(
            f"stats: {stats.deadlocks_detected} detected, "
            f"{stats.avoided_instantiations} avoided instantiation(s)"
        )
        if stats.deadlocks_detected == 0 and len(log) == 4:
            print("ordered locking holds: nothing to detect, nothing to lint")
        else:
            print("unexpected: a consistent lock order cannot deadlock")


if __name__ == "__main__":
    main()
