#!/usr/bin/env python3
"""The paper's case study, end to end: Android issue 7986 on a simulated phone.

One thread posts a notification while another expands the status bar.
``NotificationManagerService.enqueueNotificationWithTag`` and
``StatusBarService$H.handleMessage`` take the two services' monitors in
opposite orders, and the whole interface freezes.

This script replays §5's story on the simulated platform:

1. **vanilla phone** — the race fires and the UI hangs; nothing learned;
2. **Dimmunix phone, boot 1** — the phone still hangs *once*, but the
   deadlock is detected and its signature persisted to the history file;
3. **reboot** — a fresh ``system_server`` forked from Zygote loads the
   history and runs the identical workload to completion: the racing
   acquisition is parked for a moment instead of deadlocking.

Usage::

    python examples/notification_deadlock.py [history-dir]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.android.issue7986 import (
    PROCESS_NAME,
    demonstrate_immunity,
    run_vanilla,
)
from repro.core.history import History


def describe(label: str, result) -> None:
    summary = result.summary()
    state = "FROZE (UI hang)" if result.frozen else summary["status"].upper()
    print(f"  {label}: {state}")
    print(
        f"      syncs={summary['syncs']}, deadlock detections="
        f"{summary['detections']}, avoidance yields={summary['yields']}"
    )


def main() -> None:
    history_dir = (
        Path(sys.argv[1])
        if len(sys.argv) > 1
        else Path(tempfile.mkdtemp(prefix="dimmunix-7986-"))
    )

    print("=== vanilla Android: the bug as users experience it ===")
    vanilla = run_vanilla(seed=11)
    describe("vanilla run", vanilla)
    if vanilla.run.stall:
        cycle = vanilla.run.stall.get("cycle")
        if cycle:
            print(f"      stall diagnosis: {cycle}")

    print()
    print("=== Dimmunix-enabled Android ===")
    first, second = demonstrate_immunity(history_dir, seed=11)
    describe("boot 1 (first encounter)", first)

    history_file = history_dir / f"{PROCESS_NAME}.history"
    persisted = History.load(history_file)
    print(f"      signature persisted to {history_file}")
    for signature in persisted:
        for index, entry in enumerate(signature.entries):
            outer = entry.outer.top()
            print(
                f"      thread {index + 1} acquired its lock at "
                f"{outer.file}:{outer.line} ({outer.function})"
            )

    describe("boot 2 (after reboot)", second)

    print()
    if first.frozen and second.completed and not second.detections:
        print(
            "the phone hung exactly once; the deadlock is now avoided "
            "deterministically, with no user intervention."
        )
    else:
        print("unexpected outcome — see the summaries above.")


if __name__ == "__main__":
    main()
